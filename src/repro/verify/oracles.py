"""Run one litmus program under one design and check the paper's
invariants.

The oracles encode the correctness claims of §3 and §5:

* **sc-with-fences** — a correctly fenced program (at most one wf per
  group, a fence at every store→load boundary) must produce an
  SC-acyclic dependence graph under every design;
* **no-deadlock** — with recovery enabled, no design may let the
  no-progress watchdog fire (W+ must recover, WS+/SW+ must order,
  Wee's GRT must resolve the collision);
* **recovery-soundness** — W+ recoveries may roll threads back, but
  the surviving execution must still be SC;
* **termination** — every run must complete within the verify cycle
  cap (no livelock between recovery and re-execution).

A fence-stripped program finding an SCV is *not* a violation — it is
the positive control proving the checker and the explorer both work.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import DeadlockError, SanitizerError, SimulatorError
from repro.common.params import FenceDesign
from repro.core import isa as ops
from repro.sim.machine import Machine
from repro.sim.scv import find_scv
from repro.verify.generator import LitmusProgram
from repro.verify.perturb import SchedulePoint

#: the five designs evaluated in the paper (CLI ``--designs all``)
PAPER_DESIGNS = (
    FenceDesign.S_PLUS,
    FenceDesign.WS_PLUS,
    FenceDesign.SW_PLUS,
    FenceDesign.W_PLUS,
    FenceDesign.WEE,
)

#: warmup alignment compute block (mirrors workloads.litmus._warmup)
WARMUP_COMPUTE = 1600


@dataclass
class ProgramRun:
    """Outcome of one (program, design, schedule point) execution."""

    program: LitmusProgram
    design: FenceDesign
    point: SchedulePoint
    completed: bool = False
    cycles: int = 0
    #: watchdog verdict, if the run deadlocked
    deadlock: Optional[str] = None
    #: unexpected simulator error (replay divergence, protocol bug...)
    error: Optional[str] = None
    #: dependence cycle found by the SCV checker, if any
    scv: Optional[list] = None
    #: first sanitizer violation, if a strict sanitizer fired
    sanitizer: Optional[str] = None
    recoveries: int = 0
    bounces: int = 0
    #: wf -> sf storm demotions (graceful degradation, W+ only)
    storm_demotions: int = 0
    #: {(tid, op_index): value} for every load the program performed
    observed: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @property
    def scv_found(self) -> bool:
        return self.scv is not None


def _thread_fn(body, addr_map, warm_addrs):
    """Bind one symbolic op list as a runnable generator function."""

    def fn(ctx):
        for addr in warm_addrs:
            yield ops.Load(addr)
        if warm_addrs:
            yield ops.Compute(WARMUP_COMPUTE)
        for idx, op in enumerate(body):
            if isinstance(op, ops.Store):
                yield ops.Store(addr_map[op.addr], op.value)
            elif isinstance(op, ops.Load):
                value = yield ops.Load(addr_map[op.addr])
                yield ops.Note((idx, value))
            elif isinstance(op, ops.AtomicRMW):
                old = yield ops.AtomicRMW(
                    addr_map[op.addr], op.op, op.operand
                )
                yield ops.Note((idx, old))
            else:
                yield op

    return fn


def run_program(
    program: LitmusProgram,
    design: FenceDesign,
    point: SchedulePoint = SchedulePoint(),
    recovery: bool = True,
    warmup: bool = True,
    faults=None,
    params_overrides: Optional[dict] = None,
    diag_dir: Optional[str] = None,
    sanitize: str = "off",
    attrib=None,
    budget=None,
) -> ProgramRun:
    """Execute *program* under *design* at *point* and classify it.

    *faults* is a :class:`repro.faults.FaultInjector` to wire into the
    machine (the chaos harness's entry point); *params_overrides* are
    extra :class:`MachineParams` field overrides (e.g. enabling the W+
    storm-demotion monitor); *diag_dir* enables watchdog post-mortem
    artifacts; *sanitize* attaches a runtime protocol sanitizer
    ("warn" | "strict" | "degrade") as an additional oracle — under a
    strict sanitizer a corrupted machine state is classified at the
    first violating cycle instead of surfacing later as a
    deadlock/livelock at the cycle cap.

    *attrib* is an optional :class:`repro.obs.CycleAttribution` wired
    into the machine before the run (chaos postmortems attribute the
    cycles of a failing case to fence components).

    *budget* is an optional :class:`~repro.sim.governor.RunBudget`
    bounding the run by wall/events/RSS with a graceful degraded
    cutoff — farm workers set one so a wedged case can never wedge
    its worker process.
    """
    run = ProgramRun(program=program, design=design, point=point)
    params = point.params(design, program.num_threads, recovery=recovery)
    if params_overrides:
        params = dataclasses.replace(params, **params_overrides)
    machine = Machine(params, seed=point.seed)
    if faults is not None:
        machine.attach_faults(faults)
    if sanitize != "off":
        from repro.sanitizer import Sanitizer

        # sample well inside the 5k verify watchdog interval so a
        # violation is attributed by the sanitizer, not the watchdog
        machine.attach_sanitizer(Sanitizer(mode=sanitize, interval=500))
    if diag_dir is not None:
        machine.diag_dir = diag_dir
    if attrib is not None:
        machine.attach_attrib(attrib)
    addr_map = [machine.alloc.word() for _ in range(program.num_vars)]
    warm_addrs = (
        [addr_map[v] for v in program.warm_vars] if warmup else []
    )
    for body in program.threads:
        machine.spawn(_thread_fn(body, addr_map, warm_addrs))
    try:
        result = machine.run(budget=budget)
        run.completed = result.completed
        run.cycles = result.cycles
    except SanitizerError as exc:
        run.sanitizer = str(exc)
        run.cycles = machine.queue.now
    except DeadlockError as exc:
        run.deadlock = str(exc)
        run.cycles = machine.queue.now
    except SimulatorError as exc:  # replay divergence, protocol bug
        run.error = f"{type(exc).__name__}: {exc}"
        run.cycles = machine.queue.now
    events = machine.recorder.events if machine.recorder else []
    run.scv = find_scv(events)
    run.recoveries = machine.stats.wplus_recoveries
    run.bounces = machine.stats.bounces
    run.storm_demotions = sum(machine.stats.storm_demotions)
    for core in machine.cores:
        for _po, payload in core.notes:
            idx, value = payload
            run.observed[(core.core_id, idx)] = value
    return run


def check_invariants(run: ProgramRun) -> List[str]:
    """Violations of the paper's claims in *run* (empty = all held).

    Only meaningful for runs with recovery enabled; the naive Fig. 3a
    configuration (``recovery=False``) deadlocks by design.
    """
    violations: List[str] = []
    if run.error is not None:
        violations.append(f"simulator-error: {run.error}")
    if run.sanitizer is not None:
        violations.append(f"sanitizer: {run.sanitizer}")
    if run.deadlock is not None:
        violations.append(f"deadlock: {run.deadlock}")
    elif not run.completed and run.error is None and run.sanitizer is None:
        violations.append(
            f"livelock: run hit the cycle cap at {run.cycles} cycles"
        )
    if run.program.has_fences and run.scv_found:
        violations.append(
            f"scv-under-fences: cycle of length {len(run.scv)} despite "
            f"correct fencing under {run.design}"
        )
    if run.recoveries and run.scv_found:
        violations.append(
            f"recovery-left-non-sc: {run.recoveries} W+ recoveries but "
            f"the surviving execution is not SC"
        )
    return violations
