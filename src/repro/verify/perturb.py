"""Schedule perturbation: force different interleavings of one program.

The simulator is deterministic for a fixed ``(MachineParams, seed)``,
so exploring schedules means sweeping the machine knobs that move the
relative timing of stores, fences and loads:

* the machine **seed** (thread RNG streams),
* **NoC hop latency** (how long coherence transactions stay in flight),
* **write-buffer depth** (how many pre-fence stores can pile up),
* **BS capacity** (when post-fence loads start stalling), and
* the **bounce retry back-off** (the cadence of fence-group collisions).

Each :class:`SchedulePoint` is one concrete assignment; the verifier
runs every program × design under several points.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator, List

from repro.common.params import FenceDesign, MachineParams

#: watchdog period for verification runs: small enough that a genuine
#: deadlock surfaces in milliseconds of host time, large enough that a
#: cold-miss burst (~200 cycles) can never trip it.
VERIFY_WATCHDOG_INTERVAL = 5_000

#: hard cycle cap per verification run (a litmus program finishes in a
#: few thousand cycles; hitting the cap means livelock).
VERIFY_MAX_CYCLES = 200_000


@dataclass(frozen=True)
class SchedulePoint:
    """One point of the schedule-exploration sweep.

    The optional NoC-jitter fields arm the point with a protocol-legal
    :class:`~repro.faults.plan.FaultPlan` delaying a fraction of
    messages (``injector()``).  Global machine knobs alone cannot
    stretch one thread's write-buffer drain past another's — the
    asymmetric interleavings that separate a single-fence placement
    from a correct one — but seed-dependent message delays can.  The
    fence synthesizer's adversary points use this; plain verify points
    keep the fields at 0 and behave exactly as before.
    """

    seed: int = 1
    mesh_hop_cycles: int = 5
    write_buffer_entries: int = 64
    bs_entries: int = 32
    bounce_retry_cycles: int = 20
    #: fraction of NoC messages receiving extra delivery latency
    noc_jitter_rate: float = 0.0
    #: max extra cycles per delayed message (0 disarms the jitter)
    noc_jitter_max_cycles: int = 0

    @property
    def jittered(self) -> bool:
        return self.noc_jitter_rate > 0 and self.noc_jitter_max_cycles > 0

    def injector(self):
        """A fresh FaultInjector for this point's jitter plan, or None
        when the point is unarmed (injectors are single-run objects)."""
        if not self.jittered:
            return None
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan

        plan = FaultPlan(
            scenario="schedule_jitter",
            seed=self.seed,
            noc_delay_rate=self.noc_jitter_rate,
            noc_delay_max_cycles=self.noc_jitter_max_cycles,
        )
        return FaultInjector(plan)

    def params(
        self, design: FenceDesign, num_cores: int, recovery: bool = True
    ) -> MachineParams:
        """Interleaving-exact machine parameters for this point."""
        base = MachineParams(
            num_cores=num_cores,
            num_banks=num_cores,
            batch_cycles=0,
            track_dependences=True,
            mesh_hop_cycles=self.mesh_hop_cycles,
            write_buffer_entries=self.write_buffer_entries,
            bs_entries=self.bs_entries,
            bounce_retry_cycles=self.bounce_retry_cycles,
            watchdog_interval=VERIFY_WATCHDOG_INTERVAL,
            max_cycles=VERIFY_MAX_CYCLES,
        ).with_design(design)
        return replace(base, wplus_recovery_enabled=recovery)


#: the sweep axes (kept small: values are multiplied by seeds × designs)
HOP_CYCLES = (2, 5, 11)
WB_DEPTHS = (2, 8, 64)
BS_CAPS = (1, 4, 32)
RETRY_CYCLES = (6, 20, 45)

#: the paper's default timing, always explored first
DEFAULT_POINT = SchedulePoint()


def schedule_points(seed: int, count: int) -> List[SchedulePoint]:
    """*count* reproducible points: the default timing first, then a
    random walk over the sweep axes with distinct machine seeds."""
    rng = random.Random(seed)
    points = [DEFAULT_POINT]
    while len(points) < count:
        points.append(
            SchedulePoint(
                seed=rng.randrange(1, 1_000_000),
                mesh_hop_cycles=rng.choice(HOP_CYCLES),
                write_buffer_entries=rng.choice(WB_DEPTHS),
                bs_entries=rng.choice(BS_CAPS),
                bounce_retry_cycles=rng.choice(RETRY_CYCLES),
            )
        )
    return points[:count]


#: jitter arming for adversary points: rates × magnitudes strong enough
#: to stretch one thread's drain past another's fence window, bounded
#: well inside the verify cycle cap (all protocol-legal)
JITTER_RATES = (0.2, 0.3, 0.4)
JITTER_MAX_CYCLES = (120, 300)


def adversary_points(seed: int, count: int) -> List[SchedulePoint]:
    """*count* reproducible points for fence synthesis: the default
    timing first, then alternating plain sweep points and NoC-jitter-
    armed points.

    Prefix-stable by construction: ``adversary_points(s, n)`` is a
    prefix of ``adversary_points(s, m)`` for n <= m, so re-verifying a
    synthesized placement at a larger budget strictly adds schedules.
    """
    rng = random.Random(seed ^ 0x5EED_AD5A)
    points = [DEFAULT_POINT]
    while len(points) < count:
        base = SchedulePoint(
            seed=rng.randrange(1, 1_000_000),
            mesh_hop_cycles=rng.choice(HOP_CYCLES),
            write_buffer_entries=rng.choice(WB_DEPTHS),
            bs_entries=rng.choice(BS_CAPS),
            bounce_retry_cycles=rng.choice(RETRY_CYCLES),
        )
        # every second point is jitter-armed (drawn either way so the
        # plain points do not depend on how the armed ones draw)
        rate = rng.choice(JITTER_RATES)
        max_cycles = rng.choice(JITTER_MAX_CYCLES)
        if len(points) % 2 == 0:
            base = replace(base, noc_jitter_rate=rate,
                           noc_jitter_max_cycles=max_cycles)
        points.append(base)
    return points[:count]


def iter_points(seed: int) -> Iterator[SchedulePoint]:
    """Endless stream of schedule points (budget-bounded callers)."""
    rng = random.Random(seed)
    yield DEFAULT_POINT
    while True:
        yield SchedulePoint(
            seed=rng.randrange(1, 1_000_000),
            mesh_hop_cycles=rng.choice(HOP_CYCLES),
            write_buffer_entries=rng.choice(WB_DEPTHS),
            bs_entries=rng.choice(BS_CAPS),
            bounce_retry_cycles=rng.choice(RETRY_CYCLES),
        )
