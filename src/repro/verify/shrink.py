"""Delta-debugging minimization: shrink a set while a property holds.

Two entry points share the idea:

* :func:`ddmin` — classic complement-removal ddmin over an arbitrary
  item list under a caller-supplied predicate.  The predicate's
  direction is the caller's business: the chaos harness shrinks
  *failing* injection sets ("still breaks the machine"), the fence
  synthesizer shrinks *passing* fence placements ("still satisfies the
  SC oracle").
* :func:`shrink_program` — greedy one-op-at-a-time shrinking of a
  violating litmus program: repeatedly try deleting each op (and then
  each whole thread) and keep every deletion under which "this program
  still reproduces the violation" holds.  The fixpoint is 1-minimal:
  removing any single remaining op loses the violation.

Deterministic by construction: the property re-runs the simulator at
the same schedule point, and the simulator is deterministic for a
fixed (params, seed).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.verify.generator import LitmusProgram


def ddmin(
    items: Sequence,
    predicate: Callable[[list], bool],
    max_runs: int = 200,
) -> Tuple[list, int]:
    """Classic ddmin over an arbitrary item list.

    Minimize *items* (order-preserving) such that ``predicate(subset)``
    still holds, by complement removal with progressively finer
    granularity.  Returns ``(minimized, runs)``.

    The predicate is direction-agnostic — it is whatever property the
    caller wants preserved while shrinking:

    * the chaos harness shrinks a *failing* fault plan's fired-injection
      keys with "this subset still breaks the machine";
    * the fence synthesizer shrinks a *passing* fence placement with
      "this subset still satisfies the SC oracle".

    *predicate* must hold for *items* itself (caller-verified).
    """
    current = list(items)
    runs = 0
    n = 2
    while len(current) >= 2 and runs < max_runs:
        chunk = max(1, len(current) // n)
        reduced = False
        for start in range(0, len(current), chunk):
            if runs >= max_runs:
                break
            complement = current[:start] + current[start + chunk:]
            if not complement:
                continue
            runs += 1
            if predicate(complement):
                current = complement
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(current):
                break
            n = min(len(current), n * 2)
    # final singleton check: can the whole set collapse to nothing?
    if len(current) == 1 and runs < max_runs:
        runs += 1
        if predicate([]):
            current = []
    return current, runs


class ShrinkResult:
    """Outcome of one shrink loop."""

    def __init__(self, program: LitmusProgram, runs_used: int,
                 converged: bool):
        self.program = program
        self.runs_used = runs_used
        self.converged = converged


def shrink_program(
    program: LitmusProgram,
    still_fails: Callable[[LitmusProgram], bool],
    max_runs: int = 400,
) -> ShrinkResult:
    """Minimize *program* while ``still_fails(candidate)`` holds.

    *still_fails* must be True for *program* itself (the caller
    verified the violation); *max_runs* bounds the number of property
    evaluations so a flaky property cannot loop forever.
    """
    current = program
    runs = 0

    def attempt(candidate: LitmusProgram) -> bool:
        nonlocal runs
        runs += 1
        return still_fails(candidate)

    changed = True
    while changed and runs < max_runs:
        changed = False
        # pass 1: drop single ops, newest-first within each thread so
        # trailing noise (computes, extra loads) goes quickly
        for tid in range(current.num_threads):
            body = list(current.threads[tid])
            i = len(body) - 1
            while i >= 0 and runs < max_runs:
                trial = body[:i] + body[i + 1:]
                threads = [list(t) for t in current.threads]
                threads[tid] = trial
                candidate = current.with_threads(threads)
                if attempt(candidate):
                    current = candidate
                    body = trial
                    changed = True
                i -= 1
        # pass 2: drop entire (possibly emptied) threads
        if current.num_threads > 2:
            for tid in range(current.num_threads - 1, -1, -1):
                if runs >= max_runs or current.num_threads <= 2:
                    break
                threads = [
                    list(t) for j, t in enumerate(current.threads)
                    if j != tid
                ]
                candidate = current.with_threads(threads)
                if attempt(candidate):
                    current = candidate
                    changed = True
        else:
            # 2-thread programs: still prune threads that went empty
            if any(not t for t in current.threads):
                threads = [list(t) for t in current.threads if t]
                if len(threads) >= 1:
                    candidate = current.with_threads(threads)
                    if runs < max_runs and attempt(candidate):
                        current = candidate
                        changed = True
    return ShrinkResult(current, runs, runs < max_runs)
