"""Randomized litmus-program generation.

A :class:`LitmusProgram` is 2–4 per-thread lists of
:mod:`repro.core.isa` operations whose addresses are *symbolic
variable indices* (0, 1, 2, ...); the oracle runner maps each variable
to a freshly allocated simulated word before spawning the threads.

Shapes
------
``sb``     N-thread store-buffering ring (paper Fig. 1d/1e): thread *i*
           stores variable *i*, fences, loads variable *i+1 mod N*.
           The only shape whose fence-stripped version admits an SCV
           cycle under TSO (store→load reordering).
``mp``     message passing: producer stores data then flag, consumer
           loads flag then data.  TSO keeps both orders even without
           fences — a sanity shape.
``iriw``   independent reads of independent writes: two writers, two
           readers scanning in opposite orders.  Forbidden outcomes
           need non-multi-copy-atomic stores, which TSO (and this
           simulator's single memory image) never produces.
``random`` random loads/stores/computes over a small variable pool,
           with a fence inserted at every store→load transition (the
           Shasha–Snir full-fencing recipe, which restores SC under
           any correct design).

Fence-role discipline: every generated program carries **at most one**
``CRITICAL`` thread so the same program is correctly fenced under
every design — WS+/SW+ require at most one wf per fence group (paper
§3.3.1/§3.3.2), while S+, W+ and Wee accept any assignment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.common.params import FenceRole
from repro.core import isa as ops

#: shapes the generator can emit
SHAPES = ("sb", "mp", "iriw", "random")

#: shapes whose fence-stripped variant can exhibit an SCV under TSO
RACY_SHAPES = frozenset({"sb"})


@dataclass(frozen=True)
class LitmusProgram:
    """A symbolic litmus program (addresses are variable indices)."""

    name: str
    shape: str
    #: number of shared variables; the runner allocates one simulated
    #: word per variable, each on its own cache line
    num_vars: int
    #: per-thread op lists over symbolic addresses
    threads: Tuple[Tuple[object, ...], ...]
    #: variable indices the runner pre-warms into every L1 (shared
    #: variables; pads stay cold so fences stay incomplete for a while)
    warm_vars: Tuple[int, ...] = ()
    #: generator seed that produced this program (report reproducibility)
    seed: int = 0

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def op_count(self) -> int:
        return sum(len(t) for t in self.threads)

    @property
    def has_fences(self) -> bool:
        return any(
            isinstance(op, ops.Fence) for t in self.threads for op in t
        )

    def stripped(self) -> "LitmusProgram":
        """Copy with every fence removed (the SCV-hunting variant)."""
        return replace(
            self,
            name=f"{self.name}-nofence",
            threads=tuple(
                tuple(op for op in t if not isinstance(op, ops.Fence))
                for t in self.threads
            ),
        )

    def with_threads(self, threads) -> "LitmusProgram":
        return replace(
            self, threads=tuple(tuple(t) for t in threads)
        )

    def describe(self) -> List[List[str]]:
        """Readable per-thread op listing for reports."""
        return [[_op_str(op) for op in t] for t in self.threads]


def _op_str(op) -> str:
    if isinstance(op, ops.Store):
        return f"St v{op.addr}={op.value}"
    if isinstance(op, ops.Load):
        return f"Ld v{op.addr}"
    if isinstance(op, ops.Fence):
        return f"Fence({op.role.value})"
    if isinstance(op, ops.Compute):
        return f"Compute({op.instructions})"
    return repr(op)


def _roles(rng: random.Random, n: int) -> List[FenceRole]:
    """Role assignment with at most one CRITICAL thread."""
    roles = [FenceRole.STANDARD] * n
    critical = rng.randrange(n + 1)  # n = no critical thread at all
    if critical < n:
        roles[critical] = FenceRole.CRITICAL
    return roles


def _sb(rng: random.Random, seed: int) -> LitmusProgram:
    """N-thread store-buffering ring with cold pad stores."""
    n = rng.choice((2, 2, 3, 4))  # bias to the classic 2-thread shape
    pad_stores = rng.choice((0, 1, 2))
    roles = _roles(rng, n)
    # shared ring variables 0..n-1; pads n..n-1+n*pad_stores stay cold
    threads = []
    pad = n
    for i in range(n):
        body: List[object] = []
        for _ in range(pad_stores):
            body.append(ops.Store(pad, 7))
            pad += 1
        body.append(ops.Store(i, 1))
        body.append(ops.Fence(roles[i]))
        body.append(ops.Load((i + 1) % n))
        threads.append(tuple(body))
    return LitmusProgram(
        name=f"sb{n}-p{pad_stores}-s{seed}",
        shape="sb",
        num_vars=pad,
        threads=tuple(threads),
        warm_vars=tuple(range(n)),
        seed=seed,
    )


def _mp(rng: random.Random, seed: int) -> LitmusProgram:
    roles = _roles(rng, 2)
    producer = (
        ops.Store(0, 42),
        ops.Fence(roles[0]),
        ops.Store(1, 1),
    )
    consumer = (
        ops.Load(1),
        ops.Fence(roles[1]),
        ops.Load(0),
    )
    return LitmusProgram(
        name=f"mp-s{seed}",
        shape="mp",
        num_vars=2,
        threads=(producer, consumer),
        warm_vars=(0, 1),
        seed=seed,
    )


def _iriw(rng: random.Random, seed: int) -> LitmusProgram:
    roles = _roles(rng, 4)
    threads = (
        (ops.Store(0, 1),),
        (ops.Store(1, 1),),
        (ops.Load(0), ops.Fence(roles[2]), ops.Load(1)),
        (ops.Load(1), ops.Fence(roles[3]), ops.Load(0)),
    )
    return LitmusProgram(
        name=f"iriw-s{seed}",
        shape="iriw",
        num_vars=2,
        threads=threads,
        warm_vars=(0, 1),
        seed=seed,
    )


def _random(rng: random.Random, seed: int) -> LitmusProgram:
    """Random accesses, fully fenced at every store→load boundary."""
    n = rng.choice((2, 3, 4))
    num_vars = rng.choice((2, 3, 4))
    roles = _roles(rng, n)
    threads = []
    for i in range(n):
        body: List[object] = []
        pending_store = False
        for _ in range(rng.randrange(3, 8)):
            kind = rng.random()
            if kind < 0.45:
                body.append(ops.Store(rng.randrange(num_vars),
                                      rng.randrange(1, 100)))
                pending_store = True
            elif kind < 0.85:
                if pending_store:
                    # full fencing: no load may bypass a buffered store
                    body.append(ops.Fence(roles[i]))
                    pending_store = False
                body.append(ops.Load(rng.randrange(num_vars)))
            else:
                body.append(ops.Compute(rng.choice((8, 40, 120))))
        threads.append(tuple(body))
    return LitmusProgram(
        name=f"rand{n}v{num_vars}-s{seed}",
        shape="random",
        num_vars=num_vars,
        threads=tuple(threads),
        warm_vars=tuple(range(num_vars)),
        seed=seed,
    )


_BUILDERS = {"sb": _sb, "mp": _mp, "iriw": _iriw, "random": _random}


def generate_program(
    seed: int, shape: Optional[str] = None
) -> LitmusProgram:
    """One reproducible program; *shape* picks a builder (default: a
    seed-determined mix biased toward the racy ``sb`` shape)."""
    rng = random.Random(seed)
    if shape is None:
        shape = rng.choice(("sb", "sb", "mp", "iriw", "random", "random"))
    if shape not in _BUILDERS:
        raise ValueError(
            f"unknown shape {shape!r}; choose from {sorted(_BUILDERS)}"
        )
    return _BUILDERS[shape](rng, seed)
