"""The budgeted schedule-exploration loop and its report.

One *trial* is a single simulator run of (program, design, schedule
point).  The engine spends its budget alternating two kinds of trial:

* **fenced trials** — every generated program runs under every design
  in the config; any oracle violation (SCV under correct fences,
  deadlock with recovery enabled, livelock, recovery leaving a non-SC
  state) is a finding against the paper's claims;
* **stripped trials** — the same program with its fences deleted runs
  under the baseline design; an SCV here is the *positive control*: it
  proves the explorer reaches racy interleavings and the checker sees
  them.

The first stripped SCV is handed to the shrinker, which minimizes it
to the smallest op list still reproducing a violation at the same
schedule point.  Results land in a machine-readable JSON report
(default ``benchmarks/out/verify_report.json``).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.params import FenceDesign
from repro.verify.generator import (
    RACY_SHAPES,
    LitmusProgram,
    generate_program,
)
from repro.verify.oracles import (
    PAPER_DESIGNS,
    check_invariants,
    run_program,
)
from repro.verify.perturb import SchedulePoint, schedule_points
from repro.verify.shrink import shrink_program

DEFAULT_REPORT_PATH = "benchmarks/out/verify_report.json"


@dataclass(frozen=True)
class VerifyConfig:
    """Knobs of one verification campaign."""

    budget: int = 200
    designs: Tuple[FenceDesign, ...] = PAPER_DESIGNS
    seed: int = 12345
    #: restrict generation to one shape (None = seed-determined mix)
    shape: Optional[str] = None
    shrink: bool = True
    #: schedule points explored per campaign (cycled across programs)
    num_points: int = 6
    #: property evaluations the shrinker may spend (outside *budget*)
    shrink_budget: int = 200


@dataclass
class VerifyReport:
    """Aggregated campaign outcome (JSON-serializable via to_dict)."""

    config: Dict = field(default_factory=dict)
    runs: int = 0
    programs: int = 0
    #: str(design) -> {"runs", "scvs", "violations", "recoveries"}
    per_design: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: oracle violations on fenced programs (empty = the paper holds)
    violations: List[Dict] = field(default_factory=list)
    #: SCVs found on fence-stripped programs (the positive control)
    scv_findings: List[Dict] = field(default_factory=list)
    #: the first finding, minimized
    shrunk: Optional[Dict] = None

    @property
    def fenced_scvs(self) -> int:
        return sum(d["scvs"] for d in self.per_design.values())

    @property
    def stripped_scvs(self) -> int:
        return len(self.scv_findings)

    def to_dict(self) -> Dict:
        return {
            "config": self.config,
            "runs": self.runs,
            "programs": self.programs,
            "per_design": self.per_design,
            "fenced_scvs": self.fenced_scvs,
            "stripped_scvs": self.stripped_scvs,
            "violations": self.violations,
            "scv_findings": self.scv_findings,
            "shrunk": self.shrunk,
        }

    def write_json(self, path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def summary(self) -> str:
        lines = [
            f"verify: {self.runs} runs over {self.programs} programs",
            f"  fenced runs : {self.fenced_scvs} SCVs, "
            f"{len(self.violations)} invariant violations",
            f"  stripped    : {self.stripped_scvs} SCVs found "
            f"(positive control)",
        ]
        for name, row in sorted(self.per_design.items()):
            lines.append(
                f"  {name:<5s}: {row['runs']} runs, {row['scvs']} SCVs, "
                f"{row['recoveries']} recoveries"
            )
        if self.shrunk is not None:
            lines.append(
                f"  shrunk {self.shrunk['from_ops']} -> "
                f"{self.shrunk['to_ops']} ops: {self.shrunk['name']}"
            )
        for v in self.violations[:5]:
            lines.append(f"  VIOLATION {v['program']} under "
                         f"{v['design']}: {v['violations']}")
        verdict = "FAIL" if self.violations else "OK"
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def _finding(run, program: LitmusProgram) -> Dict:
    return {
        "program": program.name,
        "shape": program.shape,
        "gen_seed": program.seed,
        "design": str(run.design),
        "point": {
            "seed": run.point.seed,
            "mesh_hop_cycles": run.point.mesh_hop_cycles,
            "write_buffer_entries": run.point.write_buffer_entries,
            "bs_entries": run.point.bs_entries,
            "bounce_retry_cycles": run.point.bounce_retry_cycles,
        },
        "cycle_len": len(run.scv) if run.scv else 0,
        "ops": program.describe(),
        "op_count": program.op_count,
    }


def run_verification(config: VerifyConfig,
                     out_path: Optional[str] = DEFAULT_REPORT_PATH
                     ) -> VerifyReport:
    """Run one campaign; writes the JSON report unless *out_path* is
    None and returns the in-memory :class:`VerifyReport`."""
    report = VerifyReport(config={
        "budget": config.budget,
        "designs": [str(d) for d in config.designs],
        "seed": config.seed,
        "shape": config.shape,
        "shrink": config.shrink,
        "num_points": config.num_points,
    })
    report.per_design = {
        str(d): {"runs": 0, "scvs": 0, "violations": 0, "recoveries": 0}
        for d in config.designs
    }
    points = schedule_points(config.seed, config.num_points)
    baseline = config.designs[0]
    prog_idx = 0
    while report.runs < config.budget:
        program = generate_program(
            config.seed * 7919 + prog_idx, shape=config.shape
        )
        point = points[prog_idx % len(points)]
        report.programs += 1
        prog_idx += 1

        # fenced trials: the paper's invariants must hold everywhere
        for design in config.designs:
            if report.runs >= config.budget:
                break
            run = run_program(program, design, point)
            report.runs += 1
            row = report.per_design[str(design)]
            row["runs"] += 1
            row["recoveries"] += run.recoveries
            if run.scv_found:
                row["scvs"] += 1
            problems = check_invariants(run)
            if problems:
                row["violations"] += 1
                report.violations.append({
                    "program": program.name,
                    "design": str(design),
                    "violations": problems,
                    "ops": program.describe(),
                })

        # stripped trial: hunt the SCV the fences were preventing
        if program.shape in RACY_SHAPES and report.runs < config.budget:
            stripped = program.stripped()
            run = run_program(stripped, baseline, point)
            report.runs += 1
            if run.scv_found:
                report.scv_findings.append(_finding(run, stripped))
                if config.shrink and report.shrunk is None:
                    report.shrunk = _shrink_finding(
                        stripped, baseline, point, config
                    )
    if out_path is not None:
        report.write_json(out_path)
    return report


def _shrink_finding(program: LitmusProgram, design: FenceDesign,
                    point: SchedulePoint,
                    config: VerifyConfig) -> Dict:
    def still_fails(candidate: LitmusProgram) -> bool:
        run = run_program(candidate, design, point)
        return run.scv_found

    result = shrink_program(
        program, still_fails, max_runs=config.shrink_budget
    )
    small = result.program
    return {
        "name": program.name,
        "design": str(design),
        "from_ops": program.op_count,
        "to_ops": small.op_count,
        "converged": result.converged,
        "shrink_runs": result.runs_used,
        "ops": small.describe(),
    }
