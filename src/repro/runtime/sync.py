"""Synchronization primitives for simulated threads.

These are *generator subroutines*: workload code composes them with
``yield from``.  They operate on simulated shared memory, so their cost
(CAS round trips, spin traffic) is part of the measured execution.
"""

from __future__ import annotations

from repro.core import isa as ops


def load(addr: int):
    """Read one word.  ``v = yield from load(a)``."""
    value = yield ops.Load(addr)
    return value


def store(addr: int, value: int):
    yield ops.Store(addr, value)


class SpinLock:
    """Test-and-test&set spinlock over one simulated word.

    ``0`` = free, ``holder+1`` = taken.  The CAS (an atomic RMW) drains
    the write buffer, giving the usual x86 lock-acquire semantics; the
    release is a plain store (TSO keeps it ordered after the critical
    section's stores).
    """

    def __init__(self, alloc):
        self.addr = alloc.word()

    def acquire(self, tid: int, spin_compute: int = 20):
        attempts = 0
        while True:
            owner = yield ops.Load(self.addr)
            if owner == 0:
                old = yield ops.AtomicRMW(self.addr, "cas", (0, tid + 1))
                if old == 0:
                    return attempts
            attempts += 1
            yield ops.Compute(spin_compute)

    def release(self, tid: int):
        yield ops.Store(self.addr, 0)


class Barrier:
    """Sense-reversing centralized barrier for ``n`` simulated threads."""

    def __init__(self, alloc, n: int):
        self.n = n
        self.count_addr = alloc.word()
        self.sense_addr = alloc.word()

    def wait(self, local_sense_holder: list):
        """``yield from barrier.wait(state)`` where *state* is a
        one-element list holding the thread's current sense."""
        local_sense = 1 - local_sense_holder[0]
        local_sense_holder[0] = local_sense
        arrived = yield ops.AtomicRMW(self.count_addr, "add", 1)
        if arrived + 1 == self.n:
            yield ops.Store(self.count_addr, 0)
            yield ops.Store(self.sense_addr, local_sense)
        else:
            while True:
                sense = yield ops.Load(self.sense_addr)
                if sense == local_sense:
                    break
                yield ops.Compute(40)
