"""Cilk-THE work-stealing deques (paper §4.1, Fig. 5a).

Each worker owns a deque in simulated shared memory.  The owner pushes
and takes at the tail; thieves steal at the head.  The THE protocol
coordinates them with a Dekker-style handshake:

* ``take``:  ``T--``; **fence**; read ``H``; on conflict fall back to
  the lock.
* ``steal``: (under the victim's lock) ``H++``; **fence**; read ``T``;
  undo and fail if the element was gone.

The two fences form the paper's canonical two-fence group.  Because the
owner executes take() for (almost) every task while stealing is rare
(<0.5 % of tasks in the paper's runs), the asymmetric recipe is:
**owner fence = CRITICAL (wf), thief fence = STANDARD (sf)**.

Correctness invariant exercised by the tests: every pushed task is
executed exactly once — an SCV in this protocol manifests as a task
executed twice (both owner and thief win the race, paper §4.1).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.params import FenceRole
from repro.core import isa as ops
from repro.runtime.sync import SpinLock

#: sentinel returned when no task was obtained
EMPTY = None

#: interned scheduler ops — one immutable instance each, yielded once
#: (or more) per task by every worker
_FENCE_TAKE = ops.Fence(FenceRole.CRITICAL)
_FENCE_STEAL = ops.Fence(FenceRole.STANDARD)
_MARK_STOLEN = ops.Mark("task_stolen")
_MARK_EXECUTED = ops.Mark("task_executed")
_IDLE_SPIN = ops.Compute(60)


class WorkDeque:
    """One worker's THE deque in simulated memory."""

    def __init__(self, alloc, capacity: int, owner: int):
        self.owner = owner
        self.capacity = capacity
        # head/tail on separate lines: false sharing between them would
        # put unrelated bounce pressure on the protocol words.
        self.head_addr = alloc.word()
        self.tail_addr = alloc.word()
        self.slots = alloc.alloc_line(capacity)
        self.lock = SpinLock(alloc)
        self._word_bytes = alloc.amap.word_bytes
        # interned loads of the two protocol words (fixed addresses,
        # read on every push/take/steal)
        self._ld_tail = ops.Load(self.tail_addr)
        self._ld_head = ops.Load(self.head_addr)

    def slot(self, index: int) -> int:
        return self.slots + (index % self.capacity) * self._word_bytes

    # --- owner operations ------------------------------------------------

    def push(self, task_id: int):
        """Owner appends a task at the tail (task ids are 1-based;
        0 marks an empty slot)."""
        tail = yield self._ld_tail
        yield ops.Store(self.slot(tail), task_id)
        # TSO orders the slot store before the tail publication.
        yield ops.Store(self.tail_addr, tail + 1)

    def take(self):
        """Owner removes a task from the tail (THE fast path + lock
        fallback).  Returns the task id or EMPTY."""
        tail = yield self._ld_tail
        t = tail - 1
        yield ops.Store(self.tail_addr, t)
        yield _FENCE_TAKE
        head = yield self._ld_head
        if head > t:
            # deque looked empty or a thief is racing for the last task:
            # restore and resolve under the lock.
            yield ops.Store(self.tail_addr, t + 1)
            yield from self.lock.acquire(self.owner)
            head = yield self._ld_head
            if head > t:
                yield from self.lock.release(self.owner)
                return EMPTY
            yield ops.Store(self.tail_addr, t)
            task = yield ops.Load(self.slot(t))
            yield from self.lock.release(self.owner)
            return task
        task = yield ops.Load(self.slot(t))
        return task

    # --- thief operation ----------------------------------------------------

    def steal(self, thief: int):
        """A thief removes a task from the head.  Returns id or EMPTY."""
        yield from self.lock.acquire(thief)
        head = yield self._ld_head
        yield ops.Store(self.head_addr, head + 1)
        yield _FENCE_STEAL
        tail = yield self._ld_tail
        if tail < head + 1:
            # nothing to steal: undo the head increment
            yield ops.Store(self.head_addr, head)
            yield from self.lock.release(thief)
            return EMPTY
        task = yield ops.Load(self.slot(head))
        yield from self.lock.release(thief)
        return task


class WorkStealingRuntime:
    """A set of THE deques plus the scheduler loop worker threads run."""

    def __init__(self, alloc, num_workers: int, deque_capacity: int = 2048):
        self.num_workers = num_workers
        self.deques: List[WorkDeque] = [
            WorkDeque(alloc, deque_capacity, owner=w) for w in range(num_workers)
        ]
        #: per-worker executed-task counters (each on a private line, so
        #: steady-state increments are cheap owner writes); idle workers
        #: sum them against the app's known task total to terminate.
        self.executed_addrs = alloc.alloc_words_padded(num_workers)
        self._ld_executed = tuple(ops.Load(a) for a in self.executed_addrs)

    def worker_loop(self, ctx, app, executed: Optional[list] = None):
        """The scheduler loop: take / execute / push children / steal.

        *app* provides the task graph: ``app.total_tasks`` is the number
        of tasks the whole run will execute, ``app.roots(worker)`` seeds
        the worker's deque, and ``app.run_task(task_id)`` is a generator
        yielding the task's work and returning spawned child ids.
        *executed*, if given, is a Python-side list collecting executed
        task ids (test hook for the exactly-once invariant).
        """
        me = ctx.tid
        deque = self.deques[me]
        my_done = 0
        for task in app.roots(me):
            yield from deque.push(task)
        while True:
            task = yield from deque.take()
            if task is EMPTY:
                victim = self._pick_victim(ctx)
                task = yield from self.deques[victim].steal(me)
                if task is not EMPTY:
                    yield _MARK_STOLEN
            if task is EMPTY:
                yield _IDLE_SPIN
                total = 0
                for ld in self._ld_executed:
                    total += yield ld
                if total >= app.total_tasks:
                    return
                continue
            children = yield from app.run_task(task)
            yield _MARK_EXECUTED
            if executed is not None:
                executed.append(task)
            my_done += 1
            yield ops.Store(self.executed_addrs[me], my_done)
            for child in children:
                yield from deque.push(child)

    def _pick_victim(self, ctx) -> int:
        victim = ctx.rng.randrange(self.num_workers)
        if victim == ctx.tid:
            victim = (victim + 1) % self.num_workers
        return victim
