"""Lamport's Bakery algorithm (paper §4.3, Fig. 6).

A lock-free mutual-exclusion protocol: a thread grabs an increasing
ticket number and waits for every smaller ticket to be served.  Each
thread writes its own ``E[i]`` (choosing flag) / ``N[i]`` (number) entry
and reads everyone else's, so fences after the writes form groups with
*any* combination of threads (Fig. 6b/6c).

The asymmetric recipe from the paper: to give one thread priority, its
fences are wfs (WS+ works because that thread is the group's single
wf); for all threads to run equally fast, use W+.  ``priority_tid``
selects which thread gets the CRITICAL role (None = all CRITICAL,
the W+ usage; the S+ design maps every role to sf anyway).

The mutual-exclusion invariant is exercised by the tests: a shared
counter incremented non-atomically inside the critical section must
show no lost updates.
"""

from __future__ import annotations

from typing import Optional

from repro.common.params import FenceRole
from repro.core import isa as ops


class Bakery:
    """Bakery mutual exclusion over simulated shared arrays E and N."""

    def __init__(self, alloc, num_threads: int,
                 priority_tid: Optional[int] = None):
        self.num_threads = num_threads
        self.priority_tid = priority_tid
        # one entry per line: E[i]/N[i] are single-writer words and
        # padding keeps the inter-thread traffic true sharing only.
        self.choosing = alloc.alloc_words_padded(num_threads)
        self.number = alloc.alloc_words_padded(num_threads)

    def _role(self, tid: int) -> FenceRole:
        if self.priority_tid is None or tid == self.priority_tid:
            return FenceRole.CRITICAL
        return FenceRole.STANDARD

    def lock(self, tid: int):
        role = self._role(tid)
        # choosing phase: E[own] = 1 ; fence ; read all numbers
        yield ops.Store(self.choosing[tid], 1)
        yield ops.Fence(role)
        highest = 0
        for other in range(self.num_threads):
            n = yield ops.Load(self.number[other])
            highest = max(highest, n)
        yield ops.Store(self.number[tid], highest + 1)
        yield ops.Store(self.choosing[tid], 0)
        yield ops.Fence(role)
        # waiting phase: for each other thread, wait until it is not
        # choosing and our (number, tid) is the smallest pending.
        for other in range(self.num_threads):
            if other == tid:
                continue
            while True:
                ch = yield ops.Load(self.choosing[other])
                if not ch:
                    break
                yield ops.Compute(30)
            while True:
                n = yield ops.Load(self.number[other])
                if n == 0 or (n, other) > (highest + 1, tid):
                    break
                yield ops.Compute(30)

    def unlock(self, tid: int):
        yield ops.Store(self.number[tid], 0)
