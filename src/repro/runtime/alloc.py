"""Bump allocator over the simulated address space.

Workloads allocate their shared data structures here before the run.
Placement controls the phenomena the paper studies:

* line padding (one word per line) eliminates false sharing;
* deliberately packing two unrelated words into one line *creates* the
  false-sharing fence collisions of Fig. 4b;
* block-local allocation (``alloc_in_block``) co-locates data with its
  STM lock metadata inside one NUMA interleave block, which controls
  how often WeeFence can confine its PS/BS to a single directory
  module (Table 4, Wee sf-conversion columns).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.addr import AddressMap
from repro.common.errors import ConfigError

#: keep simulated data away from address 0 for easier debugging
DEFAULT_BASE = 0x1_0000


class Allocator:
    """Bump allocator with line/block-aware placement helpers."""

    def __init__(self, amap: AddressMap, base: int = DEFAULT_BASE):
        self.amap = amap
        self._cursor = base

    # --- basic allocation -------------------------------------------------

    def alloc(self, nwords: int, align_bytes: Optional[int] = None) -> int:
        """Allocate *nwords* consecutive words; returns the base address."""
        if nwords < 1:
            raise ConfigError("allocation must be at least one word")
        align = align_bytes or self.amap.word_bytes
        cursor = self._cursor
        if cursor % align:
            cursor += align - cursor % align
        self._cursor = cursor + nwords * self.amap.word_bytes
        return cursor

    def alloc_line(self, nwords: int = 0) -> int:
        """Line-aligned allocation padded to whole lines (no one else
        will ever share these lines)."""
        nwords = nwords or self.amap.words_per_line
        base = self.alloc(nwords, align_bytes=self.amap.line_bytes)
        # pad the tail so the next allocation starts on a fresh line
        end = base + nwords * self.amap.word_bytes
        if end % self.amap.line_bytes:
            self._cursor = end + (self.amap.line_bytes - end % self.amap.line_bytes)
        return base

    def alloc_words_padded(self, n: int) -> List[int]:
        """*n* word addresses, each on its own private line."""
        return [self.alloc_line(1) for _ in range(n)]

    def word(self) -> int:
        """One word address on a private line."""
        return self.alloc_line(1)

    # --- placement-aware allocation ------------------------------------------

    def alloc_same_bank(self, near_addr: int, nwords: int) -> int:
        """Allocate *nwords* (whole fresh lines) homed at the same
        directory bank as *near_addr*.

        Used to co-locate STM lock metadata with its data so WeeFence
        can confine PS+BS to a single directory module (Table 4).  The
        allocation must not cross an interleave-block boundary, or its
        tail would land on a different bank.
        """
        target = self.amap.home_bank(near_addr)
        block = self.amap.interleave_bytes
        nbytes = -(-nwords * self.amap.word_bytes // self.amap.line_bytes) \
            * self.amap.line_bytes
        if nbytes > block:
            raise ConfigError(
                f"cannot keep {nwords} words inside one {block}-byte "
                "interleave block"
            )
        cursor = self._cursor
        if cursor % self.amap.line_bytes:
            cursor += self.amap.line_bytes - cursor % self.amap.line_bytes
        while True:
            if self.amap.home_bank(cursor) == target and \
                    cursor // block == (cursor + nbytes - 1) // block:
                self._cursor = cursor + nbytes
                return cursor
            # jump to the next interleave block
            cursor = (cursor // block + 1) * block

    def words_of(self, base: int, n: int) -> List[int]:
        """The *n* word addresses of an allocation starting at *base*."""
        wb = self.amap.word_bytes
        return [base + i * wb for i in range(n)]
