"""Observability: fence-episode tracing, interval metrics, exporters.

The subsystem has three layers:

* :mod:`repro.obs.tracer` — the :class:`Tracer`: typed span/instant
  records emitted by guard-checked hooks inside the simulator (fence
  episodes, bounce→retry chains, Order/CO directory transactions, W+
  recovery timelines, L1 miss/writeback and NoC message spans).
* :mod:`repro.obs.metrics` — the :class:`MetricsCollector`: a bounded
  per-epoch timeseries sampler (BS/WB occupancy, outstanding bounces,
  per-core cycle-breakdown deltas).
* :mod:`repro.obs.export` / :mod:`repro.obs.summary` — Chrome
  ``trace_event`` JSON (Perfetto / ``chrome://tracing``), a compact
  JSONL stream, and the ``repro trace`` text timeline.

Zero-cost-when-off contract: every hook site in the simulator is
guarded by a plain ``tracer is None`` check on a cached attribute —
no dynamic dispatch, no null-object method calls — so the untraced
hot path stays within noise of the pre-observability kernel
(referee: ``benchmarks/perf`` and :mod:`repro.obs.overhead`).
"""

from repro.obs.attrib import CycleAttribution
from repro.obs.metrics import MetricsCollector
from repro.obs.tracer import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "CycleAttribution",
    "MetricsCollector",
    "NULL_TRACER",
    "Observability",
    "TraceEvent",
    "Tracer",
]


class Observability:
    """One run's worth of observability state: tracer + metrics +
    cycle attribution.

    Construct, pass to :func:`repro.workloads.base.run_workload` (or
    call :meth:`attach` on a hand-built machine before ``run()``), then
    read ``tracer`` / ``metrics`` / ``attrib`` after the run::

        obs = Observability(metrics_interval=1000)
        run = run_workload("fib", FenceDesign.W_PLUS, obs=obs)
        write_chrome_trace("t.json", obs.tracer, obs.metrics)
    """

    def __init__(
        self,
        trace: bool = True,
        metrics_interval=None,
        max_events=None,
        max_samples: int = 512,
        attrib: bool = False,
    ):
        self.tracer = Tracer(max_events=max_events) if trace else None
        self.metrics_interval = metrics_interval
        self.max_samples = max_samples
        self.metrics = None
        self.attrib = CycleAttribution() if attrib else None

    def attach(self, machine) -> "Observability":
        """Wire this session into *machine* (before ``machine.run()``)."""
        if self.tracer is not None:
            machine.attach_tracer(self.tracer)
        if self.attrib is not None:
            machine.attach_attrib(self.attrib)
        if self.metrics_interval:
            self.metrics = MetricsCollector(
                machine,
                interval=self.metrics_interval,
                max_samples=self.max_samples,
            )
            machine.metrics = self.metrics
        return self
