"""Interval metrics: bounded per-epoch timeseries of machine state.

The :class:`MetricsCollector` rides the machine's own event queue: a
recurring self-rescheduling event (label ``obs.metrics``) samples the
machine every ``interval`` simulated cycles.  Samples are *reads only*
— the pump never mutates core, cache or directory state — so attaching
a collector cannot change simulated behaviour (the golden-trace tests
pin this).

Each sample captures

* per-core: write-buffer depth, Bypass-Set lines, incomplete fences,
  and the **deltas** of the Busy / Fence-Stall / Other-Stall cycle
  breakdown plus instructions since the previous sample;
* machine-wide deltas of the bounce/retry/recovery/traffic counters,
  and the instantaneous count of cores with a bouncing head store
  ("outstanding bounces").

The buffer is bounded (``max_samples``): when it fills, adjacent
samples are *merged* pairwise (delta fields summed, instantaneous
fields taken from the later sample) and the sampling stride doubles —
so arbitrarily long runs keep a uniform, bounded timeline whose delta
columns still sum to the end-of-run totals, instead of growing without
limit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: default epoch length (cycles) between samples
DEFAULT_INTERVAL = 1000
#: default retained-sample bound
DEFAULT_MAX_SAMPLES = 512

#: per-epoch delta fields (summed when samples merge); the remaining
#: fields are instantaneous and the later sample's value wins.
_DELTA_KEYS = (
    "bounces_delta", "write_retries_delta", "recoveries_delta",
    "network_bytes_delta", "l1_misses_delta",
)
_DELTA_LIST_KEYS = (
    "busy_delta", "fence_stall_delta", "other_stall_delta",
    "instructions_delta",
)


def _merge(older: Dict[str, object], newer: Dict[str, object]) -> Dict[str, object]:
    """Fold two adjacent samples into one epoch twice as long."""
    out = dict(newer)
    for key in _DELTA_KEYS:
        out[key] = older[key] + newer[key]
    for key in _DELTA_LIST_KEYS:
        out[key] = [a + b for a, b in zip(older[key], newer[key])]
    return out


class MetricsCollector:
    """Samples one machine on a fixed simulated-cycle period."""

    def __init__(self, machine, interval: int = DEFAULT_INTERVAL,
                 max_samples: int = DEFAULT_MAX_SAMPLES):
        if interval <= 0:
            raise ValueError(f"metrics interval must be positive: {interval}")
        self.machine = machine
        self.base_interval = interval
        self.interval = interval        # current stride (doubles on decimation)
        self.max_samples = max(2, max_samples)
        self.samples: List[Dict[str, object]] = []
        #: total ticks taken (including ones later decimated away)
        self.ticks = 0
        self._stopped = False
        self._event = None
        self._last = None  # previous cumulative snapshot for deltas

    # ------------------------------------------------------------------
    # pump
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the pump (called by ``Machine.run``)."""
        self._stopped = False
        self._last = self._cumulative()
        self._event = self.machine.queue.schedule(
            self.interval, self._tick, "obs.metrics"
        )

    def stop(self) -> None:
        """Disarm: the in-heap event (if any) becomes a no-op."""
        self._stopped = True
        if self._event is not None:
            self.machine.queue.cancel(self._event)
            self._event = None

    def _tick(self) -> None:
        # counts as a pump tick (so other pumps' idle detection isn't
        # broken by our sampling), but is deliberately NOT elastic:
        # epoch boundaries are observable output, so the timeline keeps
        # its cadence even across idle windows — which also caps any
        # other pump's fast-forward at our next epoch whenever a
        # collector is attached.
        self.machine.pump_ticks += 1
        if self._stopped:
            return
        self._event = None
        self.ticks += 1
        self.samples.append(self._sample())
        if len(self.samples) > self.max_samples:
            # fold adjacent epochs pairwise and double the stride
            s = self.samples
            merged = [_merge(s[i], s[i + 1])
                      for i in range(0, len(s) - 1, 2)]
            if len(s) % 2:
                merged.append(s[-1])
            self.samples = merged
            self.interval *= 2
        self._event = self.machine.queue.schedule(
            self.interval, self._tick, "obs.metrics"
        )

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def _cumulative(self) -> Dict[str, object]:
        """Cumulative counters the per-epoch deltas are derived from."""
        stats = self.machine.stats
        return {
            "busy": [b.busy for b in stats.breakdown],
            "fence_stall": [b.fence_stall for b in stats.breakdown],
            "other_stall": [b.other_stall for b in stats.breakdown],
            "instructions": list(stats.instructions),
            "bounces": stats.bounces,
            "write_retries": stats.write_retries,
            "wplus_recoveries": stats.wplus_recoveries,
            "network_bytes": stats.network_bytes,
            "l1_misses": stats.l1_misses,
        }

    def _sample(self) -> Dict[str, object]:
        machine = self.machine
        cur = self._cumulative()
        last = self._last
        self._last = cur
        cores = machine.cores
        sample = {
            "ts": machine.queue.now,
            "wb_depth": [len(core.wb) for core in cores],
            "bs_lines": [len(core.bs) for core in cores],
            "pending_fences": [len(core.pending_fences) for core in cores],
            "outstanding_bounces": sum(
                1 for core in cores if core.wb.any_bouncing()
            ),
            "busy_delta": [c - p for c, p in zip(cur["busy"], last["busy"])],
            "fence_stall_delta": [
                c - p for c, p in zip(cur["fence_stall"], last["fence_stall"])
            ],
            "other_stall_delta": [
                c - p for c, p in zip(cur["other_stall"], last["other_stall"])
            ],
            "instructions_delta": [
                c - p for c, p in zip(cur["instructions"],
                                      last["instructions"])
            ],
            "bounces_delta": cur["bounces"] - last["bounces"],
            "write_retries_delta": (
                cur["write_retries"] - last["write_retries"]
            ),
            "recoveries_delta": (
                cur["wplus_recoveries"] - last["wplus_recoveries"]
            ),
            "network_bytes_delta": (
                cur["network_bytes"] - last["network_bytes"]
            ),
            "l1_misses_delta": cur["l1_misses"] - last["l1_misses"],
        }
        return sample

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "base_interval": self.base_interval,
            "final_interval": self.interval,
            "ticks": self.ticks,
            "retained": len(self.samples),
            "samples": list(self.samples),
        }

    def summary(self) -> Dict[str, Optional[float]]:
        """Headline aggregates over the retained timeline."""
        if not self.samples:
            return {"retained": 0}
        n_cores = len(self.samples[0]["wb_depth"])
        mean_wb = sum(
            sum(s["wb_depth"]) for s in self.samples
        ) / (len(self.samples) * n_cores)
        mean_bs = sum(
            sum(s["bs_lines"]) for s in self.samples
        ) / (len(self.samples) * n_cores)
        peak_bouncing = max(s["outstanding_bounces"] for s in self.samples)
        return {
            "retained": len(self.samples),
            "interval": self.interval,
            "mean_wb_depth": mean_wb,
            "mean_bs_lines": mean_bs,
            "peak_outstanding_bounces": peak_bouncing,
        }
