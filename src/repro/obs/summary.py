"""Text timeline summary for ``repro trace`` (and ``repro run --trace``).

Renders the episode-level story of one traced run: event counts by
category, the top-N longest fence episodes, the longest bounce→retry
chains, a W+ recovery-episode table, and the worst fence-induced load
stalls — the questions a surprising ``bounces`` or ``wplus_recoveries``
aggregate makes you ask.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.tracer import TRACK_DIR_BASE, TRACK_NOC, Tracer


def _fmt_args(ev, skip=()) -> str:
    if not ev.args:
        return ""
    parts = [f"{k}={v}" for k, v in ev.args.items() if k not in skip]
    return " ".join(parts)


def _where(track: int) -> str:
    if track == TRACK_NOC:
        return "noc"
    if track >= TRACK_DIR_BASE:
        return f"dir{track - TRACK_DIR_BASE}"
    return f"c{track}"


def render_trace_summary(tracer: Tracer, stats=None, top: int = 10) -> str:
    """Build the multi-section text report; returns one printable string."""
    lines: List[str] = []
    out = lines.append

    out("== trace summary ==")
    out(f"events: {len(tracer.events)}"
        + (f" (+{tracer.dropped} dropped at cap)" if tracer.dropped else ""))

    # ---- counts by category / name ------------------------------------
    by_name = {}
    for ev in tracer.events:
        key = (ev.cat, ev.name, ev.ph)
        by_name[key] = by_name.get(key, 0) + 1
    if by_name:
        out("")
        out("-- event counts --")
        for (cat, name, ph), n in sorted(by_name.items()):
            out(f"  {cat:<9} {name:<16} {'span' if ph == 'X' else 'instant' if ph == 'i' else 'counter':<8} {n:>8}")

    # ---- longest fence episodes ---------------------------------------
    fences = [ev for ev in tracer.spans(cat="fence") if ev.dur]
    if fences:
        fences.sort(key=lambda ev: -ev.dur)
        out("")
        out(f"-- top {min(top, len(fences))} longest fence episodes --")
        out(f"  {'kind':<4} {'core':<5} {'start':>10} {'cycles':>9}  detail")
        for ev in fences[:top]:
            out(f"  {ev.name:<4} {_where(ev.track):<5} {ev.ts:>10} "
                f"{round(ev.dur):>9}  {_fmt_args(ev)}")

    # ---- longest bounce chains ----------------------------------------
    chains = [ev for ev in tracer.spans("bounce_chain") if ev.dur]
    if chains:
        chains.sort(key=lambda ev: (-ev.args.get("retries", 0), -ev.dur))
        out("")
        out(f"-- top {min(top, len(chains))} longest bounce chains --")
        out(f"  {'core':<5} {'start':>10} {'cycles':>9} {'retries':>8}  detail")
        for ev in chains[:top]:
            out(f"  {_where(ev.track):<5} {ev.ts:>10} {round(ev.dur):>9} "
                f"{ev.args.get('retries', 0):>8}  "
                f"{_fmt_args(ev, skip=('retries',))}")

    # ---- recovery episodes --------------------------------------------
    recoveries = tracer.spans("recovery")
    if recoveries:
        out("")
        out(f"-- W+ recovery episodes ({len(recoveries)}) --")
        out(f"  {'core':<5} {'start':>10} {'cycles':>9} {'dropped':>8} "
            f"{'bs_clr':>7} {'unwound':>8}")
        for ev in recoveries:
            out(f"  {_where(ev.track):<5} {ev.ts:>10} "
                f"{round(ev.dur or 0):>9} "
                f"{ev.args.get('dropped_stores', 0):>8} "
                f"{ev.args.get('bs_cleared', 0):>7} "
                f"{ev.args.get('fences_unwound', 0):>8}"
                + ("  [incomplete]" if ev.args.get("incomplete") else ""))
        timeouts = len(tracer.instants("wplus_timeout"))
        out(f"  timeouts armed: {timeouts}, recoveries fired: "
            f"{len(recoveries)} (armed-but-cleared: "
            f"{timeouts - len(recoveries)})")

    # ---- worst load stalls --------------------------------------------
    stalls = [ev for ev in tracer.spans("load_stall") if ev.dur]
    if stalls:
        stalls.sort(key=lambda ev: -ev.dur)
        out("")
        out(f"-- top {min(top, len(stalls))} fence-induced load stalls --")
        out(f"  {'core':<5} {'start':>10} {'cycles':>9}  reason")
        for ev in stalls[:top]:
            out(f"  {_where(ev.track):<5} {ev.ts:>10} {round(ev.dur):>9}  "
                f"{ev.args.get('reason', '?')}")

    # ---- stats cross-check --------------------------------------------
    if stats is not None:
        out("")
        out("-- stats cross-check --")
        sf_spans = tracer.spans("sf")
        wf_spans = tracer.spans("wf")
        converted = sum(1 for ev in wf_spans if ev.args
                        and ev.args.get("converted"))
        out(f"  sf episodes: {len(sf_spans) + converted} "
            f"(stats.total_sf={stats.total_sf})")
        out(f"  wf episodes: {len(wf_spans) - converted} "
            f"(stats.total_wf={stats.total_wf})")
        out(f"  dir bounces: {len(tracer.instants('bounce', cat='dir'))} "
            f"(stats.bounces={stats.bounces})")
        out(f"  bounce chains: {len(chains)} "
            f"(stats.bounced_writes={stats.bounced_writes})")
        out(f"  recoveries: {len(recoveries)} "
            f"(stats.wplus_recoveries={stats.wplus_recoveries})")

    return "\n".join(lines)


def render_metrics_summary(metrics) -> Optional[str]:
    """Short interval-metrics footer, or ``None`` without samples."""
    if metrics is None or not metrics.samples:
        return None
    s = metrics.summary()
    return ("== interval metrics ==\n"
            f"samples: {s['retained']} (interval {s['interval']} cycles)\n"
            f"mean wb depth/core: {s['mean_wb_depth']:.2f}   "
            f"mean bs lines/core: {s['mean_bs_lines']:.2f}   "
            f"peak cores bouncing: {s['peak_outstanding_bounces']}")
