"""The ``repro profile`` command: cycle-attribution reports.

Three sources, one report shape:

* ``repro profile run WORKLOAD --design D`` — run with the online
  :class:`~repro.obs.attrib.CycleAttribution` attached (tracing off:
  attribution alone is accumulator writes, no event buffer);
* ``repro profile from-trace T.jsonl`` — replay a PR-3 JSONL trace
  offline (:func:`repro.obs.analyze.replay_attribution`) and add the
  trace-only analytics (episode latency distributions, top stores);
* ``repro profile diff A B`` — attribution trees of two sources
  (designs by default, saved report / trace files when the argument
  names an existing file), diffed component by component so the rows
  *name what moved* (S+ vs W+, object vs flat kernel, faulted vs
  clean).

Output formats: ``text`` (human tree), ``json`` (the report dict),
``collapsed`` (collapsed-stack lines for flamegraph tooling, e.g.
``flamegraph.pl`` or speedscope).  Every report embeds the
conservation check; a failed check exits 1 — the correctness-oracle
exit code, because a non-conserving tree means the accounting itself
is broken.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.obs.attrib import (
    SCHEMA as TREE_SCHEMA,
    conservation_errors,
    diff_trees,
    flatten_node,
)

PROFILE_SCHEMA = "repro.profile/1"


# ---------------------------------------------------------------------------
# report building
# ---------------------------------------------------------------------------


def build_report(tree: Dict[str, object], source: str,
                 provenance: Optional[dict] = None,
                 events: Optional[Dict[str, int]] = None,
                 hot_lines: Optional[List[dict]] = None,
                 wb_peak: Optional[List[int]] = None,
                 analytics: Optional[dict] = None) -> Dict[str, object]:
    errors = conservation_errors(tree)
    report: Dict[str, object] = {
        "schema": PROFILE_SCHEMA,
        "source": source,
        "provenance": provenance,
        "tree": tree,
        "conservation": {"ok": not errors, "errors": errors},
    }
    if events is not None:
        report["events"] = events
    if hot_lines is not None:
        report["hot_lines"] = hot_lines
    if wb_peak is not None:
        report["wb_peak"] = wb_peak
    if analytics is not None:
        report["analytics"] = analytics
    return report


def profile_run(workload: str, design, num_cores: int = 8,
                scale: float = 0.5, seed: int = 12345,
                kernel: Optional[str] = None,
                sanitize: Optional[str] = None,
                label: Optional[str] = None) -> Dict[str, object]:
    """One attributed (untraced) run -> a profile report."""
    from repro.obs import Observability
    from repro.obs.export import run_provenance
    from repro.workloads.base import load_all_workloads, run_workload

    load_all_workloads()
    obs = Observability(trace=False, attrib=True)
    run = run_workload(workload, design, num_cores=num_cores, scale=scale,
                       seed=seed, obs=obs, kernel=kernel, sanitize=sanitize)
    attrib = obs.attrib
    tree = attrib.tree(label=label or f"{run.name}:{run.design}")
    return build_report(
        tree, "run",
        provenance=run_provenance(run),
        events=attrib.design_events(),
        hot_lines=attrib.top_lines(),
        wb_peak=list(attrib.wb_peak),
    )


def report_from_trace(path: str,
                      label: Optional[str] = None) -> Dict[str, object]:
    """Offline replay of a JSONL trace -> a profile report (plus the
    trace-only analytics a live run cannot compute)."""
    from repro.obs.analyze import (
        episode_latency_distribution,
        load_jsonl,
        replay_attribution,
        top_lines,
        top_stores,
    )

    data = load_jsonl(path)
    prov = data.provenance
    tree = replay_attribution(
        data, label=label or f"{prov.get('workload')}:{prov.get('design')}")
    return build_report(
        tree, "trace",
        provenance=prov,
        hot_lines=top_lines(data),
        analytics={
            "episodes": episode_latency_distribution(data),
            "top_stores": top_stores(data),
        },
    )


# ---------------------------------------------------------------------------
# renderers
# ---------------------------------------------------------------------------


def _fmt(value: float) -> str:
    if value == int(value):
        return f"{int(value):>12,d}"
    return f"{value:>12,.2f}"


def render_text(report: Dict[str, object]) -> str:
    """Human-readable attribution report."""
    tree = report["tree"]
    machine = tree["machine"]
    total = machine["cycles"] or 1  # core-cycles: num_cores * wall
    lines: List[str] = []
    label = tree.get("label") or tree["design"]
    lines.append(
        f"profile: {label} — {tree['num_cores']} core(s), "
        f"{tree['cycles']} cycles ({report['source']})"
    )
    lines.append("machine attribution (core-cycles, % of total):")
    flat = flatten_node(machine)
    rows = [(path, value) for path, value in flat.items()
            if value and not path.endswith(".total") and path != "cycles"]
    rows.sort(key=lambda kv: -abs(kv[1]))
    for path, value in rows:
        lines.append(f"  {path:42s} {_fmt(value)}  {value / total:6.1%}")
    lines.append("per-core (busy / fence / other / idle):")
    for node in tree["cores"]:
        lines.append(
            f"  core {node['core']:<3d} {_fmt(node['busy'])} "
            f"{_fmt(node['fence_stall']['total'])} "
            f"{_fmt(node['other_stall']['total'])} {_fmt(node['idle'])}"
        )
    events = report.get("events")
    if events:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(events.items()))
        lines.append(f"design events: {pairs}")
    hot = report.get("hot_lines")
    if hot:
        lines.append("hottest lines (L1 transaction wait):")
        for row in hot[:5]:
            lines.append(
                f"  line {row['line']:#x}: {row['wait_cycles']} cycles over "
                f"{row['transactions']} transaction(s)"
            )
    analytics = report.get("analytics")
    if analytics and analytics.get("episodes"):
        lines.append("episode latency (count / mean / p90 / max):")
        for name, d in sorted(analytics["episodes"].items()):
            lines.append(
                f"  {name:10s} {d['count']:>6d} / {d['mean']:>9.1f} / "
                f"{d['p90']:>9.1f} / {d['max']:>9.1f}"
            )
    cons = report["conservation"]
    if cons["ok"]:
        lines.append("conservation: OK (leaves sum exactly to each bucket)")
    else:
        lines.append("conservation: FAILED")
        for err in cons["errors"]:
            lines.append(f"  {err}")
    return "\n".join(lines)


def collapsed_stacks(tree: Dict[str, object]) -> List[str]:
    """Collapsed-stack lines (``a;b;c <count>``) for flamegraph tools.

    One stack per core and leaf; counts are rounded to whole cycles
    (flamegraph.pl takes integers).  ``idle`` is clamped at zero — a
    cutoff run's trailing serialization charge can push it negative.
    """
    lines: List[str] = []
    for node in tree["cores"]:
        root = f"core{node['core']}"
        flat = flatten_node(node)
        for path, value in sorted(flat.items()):
            if path in ("cycles",) or path.endswith(".total"):
                continue
            count = int(round(value))
            if count <= 0:
                continue
            stack = ";".join([root] + path.split("."))
            lines.append(f"{stack} {count}")
    return lines


def render_diff_text(diff: Dict[str, object], top: int = 15) -> str:
    base, other = diff["base"], diff["other"]
    lines = [
        f"attribution diff: {base['label'] or base['design']} -> "
        f"{other['label'] or other['design']}",
        f"{'component':42s} {'base':>12s} {'other':>12s} {'delta':>12s}",
    ]
    moved = [r for r in diff["rows"]
             if not r["path"].endswith(".total") and r["path"] != "cycles"]
    for row in moved[:top]:
        lines.append(
            f"{row['path']:42s} {_fmt(row['base'])} {_fmt(row['other'])} "
            f"{row['delta']:>+12,.1f}"
        )
    if len(moved) > top:
        lines.append(f"... {len(moved) - top} more component(s) moved")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI (registered by repro.cli)
# ---------------------------------------------------------------------------


def _emit(args, text: str) -> None:
    if args.out and args.out != "-":
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")
        print(f"[profile written to {args.out}]")
    else:
        print(text)


def _format_report(report: Dict[str, object], fmt: str) -> str:
    if fmt == "json":
        return json.dumps(report, indent=1, sort_keys=True)
    if fmt == "collapsed":
        return "\n".join(collapsed_stacks(report["tree"]))
    return render_text(report)


def _source_report(args, spec: str, design_parser) -> Dict[str, object]:
    """A diff operand: an existing report/trace file, or a design name
    profiled with the shared run options."""
    if os.path.exists(spec):
        if spec.endswith(".jsonl"):
            return report_from_trace(spec)
        with open(spec) as fh:
            report = json.load(fh)
        if report.get("schema") != PROFILE_SCHEMA:
            raise ValueError(
                f"{spec}: not a {PROFILE_SCHEMA} report "
                f"(schema={report.get('schema')!r})")
        return report
    design = design_parser(spec)
    return profile_run(args.workload, design, num_cores=args.cores,
                       scale=args.scale, seed=args.seed, kernel=args.kernel)


def cmd_profile(args, design_parser) -> int:
    from repro.obs.analyze import AnalysisError

    try:
        if args.profile_command == "run":
            report = profile_run(
                args.workload, args.design, num_cores=args.cores,
                scale=args.scale, seed=args.seed, kernel=args.kernel,
            )
        elif args.profile_command == "from-trace":
            report = report_from_trace(args.trace)
        else:  # diff
            base = _source_report(args, args.base, design_parser)
            other = _source_report(args, args.other, design_parser)
            for side in (base, other):
                if not side["conservation"]["ok"]:
                    print("conservation FAILED on "
                          f"{side['tree'].get('label')}:")
                    for err in side["conservation"]["errors"]:
                        print(f"  {err}")
                    return 1
            diff = diff_trees(
                base["tree"], other["tree"],
                label_base=base["tree"].get("label"),
                label_other=other["tree"].get("label"),
            )
            if args.format == "json":
                _emit(args, json.dumps(diff, indent=1, sort_keys=True))
            else:
                _emit(args, render_diff_text(diff))
            return 0
    except (AnalysisError, ValueError, OSError) as exc:
        import sys

        print(str(exc), file=sys.stderr)
        return 2
    _emit(args, _format_report(report, args.format))
    # exit-code table: 1 = correctness-oracle failure; a broken
    # conservation invariant is exactly that
    return 0 if report["conservation"]["ok"] else 1


def add_profile_parser(sub, design_type) -> None:
    """Register the ``profile`` subcommand on the repro CLI."""
    p = sub.add_parser(
        "profile",
        help="cycle-attribution profiler: run / diff / from-trace",
    )
    psub = p.add_subparsers(dest="profile_command", required=True)

    def common(pp, with_design=True):
        if with_design:
            pp.add_argument("--design", type=design_type,
                            default=design_type("S+"))
        pp.add_argument("--cores", type=int, default=8)
        pp.add_argument("--scale", type=float, default=0.5)
        pp.add_argument("--seed", type=int, default=12345)
        pp.add_argument("--kernel", default=None,
                        choices=("object", "flat"))
        pp.add_argument("--format", default="text",
                        choices=("text", "json", "collapsed"),
                        help="text report, JSON report, or collapsed "
                             "stacks for flamegraph tools")
        pp.add_argument("--out", default=None, metavar="PATH",
                        help="write the output here instead of stdout")

    p_run = psub.add_parser("run", help="profile one workload run")
    p_run.add_argument("workload")
    common(p_run)

    p_diff = psub.add_parser(
        "diff",
        help="diff two attribution trees (designs, report files, or "
             "JSONL traces)",
    )
    p_diff.add_argument("base", help="design name, report .json, or "
                                     "trace .jsonl")
    p_diff.add_argument("other", help="design name, report .json, or "
                                      "trace .jsonl")
    p_diff.add_argument("--workload", default="fib",
                        help="workload for design operands "
                             "(default fib)")
    common(p_diff, with_design=False)

    p_ft = psub.add_parser(
        "from-trace",
        help="replay a JSONL trace into an attribution report",
    )
    p_ft.add_argument("trace")
    common(p_ft, with_design=False)
