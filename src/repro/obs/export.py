"""Trace exporters: Chrome ``trace_event`` JSON and a JSONL stream.

Chrome format
-------------
``to_chrome_trace`` produces the *JSON Object Format* of the Trace
Event spec — ``{"traceEvents": [...], ...}`` — loadable directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Mapping:

* one Chrome *thread* per track: tid ``c`` for core ``c``, tid
  ``100+b`` for directory bank ``b``, tid 900 for the NoC, tid 901 for
  interval metrics — each named via ``thread_name`` metadata so the UI
  shows ``core 0``, ``dir 1``, ``noc`` swimlanes;
* spans become complete events (``"ph": "X"``) with ``ts``/``dur`` in
  microseconds at 1 cycle = 1 µs (cycle numbers read directly off the
  Perfetto time axis);
* instants become ``"ph": "i"`` thread-scoped events;
* counter samples (write-buffer depth, interval metrics) become
  ``"ph": "C"`` counter events, one series per core.

JSONL format
------------
``write_jsonl`` emits one JSON object per line: a ``meta`` header,
every trace record (``type: "event"``), then interval-metrics samples
(``type: "metrics"``).  It is the compact machine-readable stream for
ad-hoc analysis (``jq``, pandas) where the Chrome envelope gets in the
way.

``validate_chrome_trace`` is the schema check CI runs against every
exported trace; it is intentionally dependency-free (no jsonschema).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.tracer import TRACK_DIR_BASE, TRACK_METRICS, TRACK_NOC, Tracer

#: Chrome pid used for the whole simulated machine
PID = 1


def run_provenance(run, fault_scenario: Optional[str] = None) -> Dict[str, object]:
    """Provenance header for a :class:`~repro.workloads.base.WorkloadRun`.

    Recorded in the JSONL ``meta`` line and the Chrome ``otherData`` so
    a trace on disk is self-describing: the analytics loader
    (:mod:`repro.obs.analyze`) *requires* these fields to replay
    attribution and label reports.
    """
    result = run.result
    design = run.design
    return {
        "workload": run.name,
        "design": design.value if hasattr(design, "value") else str(design),
        "seed": run.seed,
        "cores": run.num_cores,
        "scale": run.scale,
        "kernel": run.kernel,
        "sanitize": run.sanitize,
        "fault_scenario": fault_scenario,
        "degraded": bool(getattr(result, "degraded", False)),
        "degraded_reason": getattr(result, "degraded_reason", None),
    }


def track_name(track: int) -> str:
    """Human-readable lane name for a track id."""
    if track == TRACK_NOC:
        return "noc"
    if track == TRACK_METRICS:
        return "metrics"
    if track >= TRACK_DIR_BASE:
        return f"dir {track - TRACK_DIR_BASE}"
    return f"core {track}"


def _metadata_events(tracks) -> List[dict]:
    events = [{
        "ph": "M", "pid": PID, "name": "process_name",
        "args": {"name": "repro simulated machine"},
    }]
    for track in sorted(tracks):
        events.append({
            "ph": "M", "pid": PID, "tid": track, "name": "thread_name",
            "args": {"name": track_name(track)},
        })
        events.append({
            "ph": "M", "pid": PID, "tid": track, "name": "thread_sort_index",
            "args": {"sort_index": track},
        })
    return events


def to_chrome_trace(tracer: Tracer, metrics=None,
                    label: Optional[str] = None,
                    provenance: Optional[Dict[str, object]] = None,
                    ) -> Dict[str, object]:
    """Render a tracer (and optional metrics) as a Chrome trace dict."""
    tracks = {ev.track for ev in tracer.events}
    if metrics is not None and metrics.samples:
        tracks.add(TRACK_METRICS)
    out: List[dict] = _metadata_events(tracks)
    for ev in tracer.events:
        rec = {
            "name": ev.name, "cat": ev.cat, "ph": ev.ph,
            "pid": PID, "tid": ev.track, "ts": ev.ts,
        }
        if ev.ph == "X":
            rec["dur"] = ev.dur if ev.dur is not None else 0
            if ev.args:
                rec["args"] = ev.args
        elif ev.ph == "i":
            rec["s"] = "t"  # thread-scoped instant
            if ev.args:
                rec["args"] = ev.args
        else:  # counter
            rec["ph"] = "C"
            rec["args"] = {"value": ev.args["value"]} if ev.args else {}
        out.append(rec)
    if metrics is not None:
        out.extend(_metrics_counter_events(metrics))
    trace = {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "clock": "1 simulated cycle = 1us",
            "dropped_events": tracer.dropped,
        },
    }
    if label:
        trace["otherData"]["label"] = label
    if provenance is not None:
        trace["otherData"]["provenance"] = provenance
    return trace


def _metrics_counter_events(metrics) -> List[dict]:
    """Interval samples as Chrome counter series on the metrics track."""
    events: List[dict] = []
    for sample in metrics.samples:
        ts = sample["ts"]
        per_core_series = {
            "wb_depth": sample["wb_depth"],
            "bs_lines": sample["bs_lines"],
            "pending_fences": sample["pending_fences"],
        }
        for name, values in per_core_series.items():
            events.append({
                "name": name, "cat": "metrics", "ph": "C",
                "pid": PID, "tid": TRACK_METRICS, "ts": ts,
                "args": {f"c{c}": v for c, v in enumerate(values)},
            })
        events.append({
            "name": "activity", "cat": "metrics", "ph": "C",
            "pid": PID, "tid": TRACK_METRICS, "ts": ts,
            "args": {
                "outstanding_bounces": sample["outstanding_bounces"],
                "bounces_delta": sample["bounces_delta"],
                "retries_delta": sample["write_retries_delta"],
                "recoveries_delta": sample["recoveries_delta"],
            },
        })
    return events


def write_chrome_trace(path: str, tracer: Tracer, metrics=None,
                       label: Optional[str] = None,
                       provenance: Optional[Dict[str, object]] = None,
                       ) -> Dict[str, object]:
    trace = to_chrome_trace(tracer, metrics, label=label,
                            provenance=provenance)
    with open(path, "w") as fh:
        json.dump(trace, fh, separators=(",", ":"))
        fh.write("\n")
    return trace


def write_jsonl(path: str, tracer: Tracer, metrics=None,
                label: Optional[str] = None,
                provenance: Optional[Dict[str, object]] = None) -> int:
    """Write the compact JSONL stream; returns the line count."""
    lines = 0
    with open(path, "w") as fh:
        header = {
            "type": "meta",
            "exporter": "repro.obs",
            "events": len(tracer.events),
            "dropped": tracer.dropped,
        }
        if label:
            header["label"] = label
        if provenance is not None:
            header["provenance"] = provenance
        fh.write(json.dumps(header, separators=(",", ":")) + "\n")
        lines += 1
        for ev in tracer.events:
            rec = {"type": "event"}
            rec.update(ev.to_dict())
            fh.write(json.dumps(rec, separators=(",", ":")) + "\n")
            lines += 1
        if metrics is not None:
            for sample in metrics.samples:
                rec = {"type": "metrics"}
                rec.update(sample)
                fh.write(json.dumps(rec, separators=(",", ":")) + "\n")
                lines += 1
    return lines


# ---------------------------------------------------------------------------
# schema validation (CI gate)
# ---------------------------------------------------------------------------

_ALLOWED_PH = {"X", "i", "I", "C", "M", "B", "E"}


def validate_chrome_trace(trace) -> List[str]:
    """Structural check of a Chrome trace dict; returns error strings.

    Covers the subset of the Trace Event Format this exporter emits:
    the object envelope, required per-phase fields, numeric ts/dur,
    and metadata naming for every referenced thread.
    """
    errors: List[str] = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    named_tids = set()
    used_tids = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _ALLOWED_PH:
            errors.append(f"{where}: bad ph {ph!r}")
            continue
        if "name" not in ev:
            errors.append(f"{where}: missing name")
        if ph == "M":
            if ev.get("name") == "thread_name":
                named_tids.add(ev.get("tid"))
            continue
        used_tids.add(ev.get("tid"))
        if not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"{where}: missing/non-numeric ts")
        if "pid" not in ev or "tid" not in ev:
            errors.append(f"{where}: missing pid/tid")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs dur >= 0, got {dur!r}")
        elif ph in ("i", "I"):
            if ev.get("s") not in (None, "t", "p", "g"):
                errors.append(f"{where}: bad instant scope {ev.get('s')!r}")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                errors.append(f"{where}: counter needs non-empty args")
            elif not all(isinstance(v, (int, float))
                         for v in args.values()):
                errors.append(f"{where}: counter args must be numeric")
    for tid in used_tids - named_tids:
        errors.append(f"tid {tid!r} has events but no thread_name metadata")
    return errors
