"""Trace analytics: JSONL loading, typed tables, attribution replay.

This module is the *offline* half of the profiler.  It loads the
JSONL stream :func:`repro.obs.export.write_jsonl` produced back into
:class:`~repro.obs.tracer.TraceEvent` records (bit-identically — the
round trip is pinned by ``tests/obs/test_analyze.py``), offers small
dependency-free query helpers (filter / groupby / percentile / top-K)
over them, and — the cross-check the tentpole demands — **replays the
trace into an attribution tree** that must equal the online tree of
the same run leaf for leaf:

* sf / recovery spans carry their serialization ``extra`` in the args,
  so the drain window is ``[ts, ts + dur - extra]``; the bounce share
  is the exact overlap of that window with the core's ``bounce_chain``
  spans (per core at most one store is in flight, so chains never
  overlap and interval clipping is exact);
* ``load_stall`` spans charge their duration to their reason leaf;
* ``mem_stall`` / ``rmw_stall`` spans carry the exact charged amount
  (``charge``) in the args — replay re-applies it verbatim, so float
  terms round-trip bit-identically through JSON (repr round-trip);
* ``wb_full_stall`` spans charge their duration;
* on the C-fence design the whole sf span is the centralized-table
  episode and lands on the ``cfence`` leaf.

Spans squashed by a W+ rollback (args ``outcome``) or cut off by the
cycle budget (args ``incomplete``) made no online charge and are
skipped.  Replay requires the trace to be complete (``dropped == 0``)
and self-describing (a ``provenance`` meta header and the per-core
``core_summary`` instants Machine.run emits) — :class:`AnalysisError`
otherwise.
"""

from __future__ import annotations

import json
import math
from typing import Callable, Dict, Iterable, List, Optional

from repro.obs.attrib import build_tree
from repro.obs.tracer import TraceEvent


class AnalysisError(Exception):
    """A trace cannot be analyzed (malformed, truncated, unprovenanced)."""


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


class TraceData:
    """One loaded JSONL trace: meta header, events, metrics samples."""

    def __init__(self, meta: dict, events: List[TraceEvent],
                 metrics: List[dict]):
        self.meta = meta
        self.events = events
        self.metrics = metrics

    @property
    def provenance(self) -> dict:
        prov = self.meta.get("provenance")
        if not isinstance(prov, dict):
            raise AnalysisError(
                "trace has no provenance header — re-export it with a "
                "current `repro trace` (the meta line must carry design/"
                "seed/kernel/... for analytics)"
            )
        return prov

    @property
    def dropped(self) -> int:
        return int(self.meta.get("dropped", 0))

    def spans(self, name: Optional[str] = None,
              cat: Optional[str] = None) -> List[TraceEvent]:
        return [ev for ev in self.events
                if ev.ph == "X"
                and (name is None or ev.name == name)
                and (cat is None or ev.cat == cat)]

    def instants(self, name: Optional[str] = None,
                 cat: Optional[str] = None) -> List[TraceEvent]:
        return [ev for ev in self.events
                if ev.ph == "i"
                and (name is None or ev.name == name)
                and (cat is None or ev.cat == cat)]


def load_jsonl(path: str) -> TraceData:
    """Load a ``write_jsonl`` stream back into typed records.

    Event lines reconstruct the original :class:`TraceEvent` exactly:
    ``to_dict`` omits only a ``None`` dur and empty args, which the
    constructor defaults restore.
    """
    meta: Optional[dict] = None
    events: List[TraceEvent] = []
    metrics: List[dict] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as exc:
                raise AnalysisError(f"{path}:{lineno}: bad JSON: {exc}")
            kind = rec.get("type")
            if kind == "meta":
                meta = rec
            elif kind == "event":
                events.append(TraceEvent(
                    rec["ph"], rec["track"], rec["name"], rec["cat"],
                    rec["ts"], rec.get("dur"), rec.get("args"),
                ))
            elif kind == "metrics":
                metrics.append(
                    {k: v for k, v in rec.items() if k != "type"})
            else:
                raise AnalysisError(
                    f"{path}:{lineno}: unknown record type {kind!r}")
    if meta is None:
        raise AnalysisError(f"{path}: no meta header line")
    return TraceData(meta, events, metrics)


# ---------------------------------------------------------------------------
# typed tables (tiny, dependency-free)
# ---------------------------------------------------------------------------


class Table:
    """A list of dict rows with filter / groupby / percentile helpers.

    Deliberately minimal — enough for episode analytics and the CLI
    reports without reaching for pandas (which the container may not
    have)."""

    def __init__(self, rows: Iterable[dict]):
        self.rows: List[dict] = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def filter(self, pred: Callable[[dict], bool]) -> "Table":
        return Table(r for r in self.rows if pred(r))

    def where(self, **eq) -> "Table":
        return self.filter(
            lambda r: all(r.get(k) == v for k, v in eq.items()))

    def groupby(self, key) -> Dict[object, "Table"]:
        fn = key if callable(key) else (lambda r: r.get(key))
        groups: Dict[object, List[dict]] = {}
        for row in self.rows:
            groups.setdefault(fn(row), []).append(row)
        return {k: Table(v) for k, v in groups.items()}

    def column(self, name: str) -> List[object]:
        return [r.get(name) for r in self.rows]

    def sum(self, name: str) -> float:
        return sum(r.get(name, 0) or 0 for r in self.rows)

    def percentile(self, name: str, q: float) -> Optional[float]:
        """Linear-interpolated percentile of a numeric column
        (q in [0, 100]); None on an empty table."""
        values = sorted(r[name] for r in self.rows if r.get(name) is not None)
        if not values:
            return None
        if len(values) == 1:
            return float(values[0])
        pos = (q / 100.0) * (len(values) - 1)
        lo = math.floor(pos)
        hi = math.ceil(pos)
        frac = pos - lo
        return values[lo] * (1.0 - frac) + values[hi] * frac

    def top(self, name: str, k: int = 10) -> "Table":
        return Table(sorted(
            self.rows, key=lambda r: -(r.get(name) or 0))[:k])


def episode_table(data: TraceData) -> Table:
    """Every fence-ish span (sf / wf / recovery / load_stall /
    bounce_chain / cfence-as-sf) as one row — the base table for
    episode-latency analytics."""
    rows = []
    for ev in data.spans():
        if ev.name not in ("sf", "wf", "recovery", "load_stall",
                           "bounce_chain"):
            continue
        args = ev.args or {}
        rows.append({
            "name": ev.name, "core": ev.track, "ts": ev.ts,
            "dur": ev.dur or 0, "reason": args.get("reason"),
            "demoted": bool(args.get("demoted")),
            "converted": bool(args.get("converted")),
            "outcome": args.get("outcome"),
            "incomplete": bool(args.get("incomplete")),
            "retries": args.get("retries"),
            "store_id": args.get("store_id"),
            "line": args.get("line"),
        })
    return Table(rows)


def episode_latency_distribution(data: TraceData,
                                 names=("sf", "wf", "recovery"),
                                 ) -> Dict[str, Dict[str, float]]:
    """Per-episode-kind latency distribution (count/mean/p50/p90/p99/max)."""
    table = episode_table(data).filter(
        lambda r: not r["incomplete"] and r["outcome"] is None)
    out: Dict[str, Dict[str, float]] = {}
    for name in names:
        sub = table.where(name=name)
        if not len(sub):
            continue
        durs = sub.column("dur")
        out[name] = {
            "count": len(sub),
            "mean": sum(durs) / len(sub),
            "p50": sub.percentile("dur", 50),
            "p90": sub.percentile("dur", 90),
            "p99": sub.percentile("dur", 99),
            "max": max(durs),
        }
    return out


def top_lines(data: TraceData, k: int = 10) -> List[dict]:
    """Top-K hottest cache lines by total L1 miss-transaction wait."""
    acc: Dict[int, List[float]] = {}
    for ev in data.spans("l1_miss"):
        line = (ev.args or {}).get("line")
        entry = acc.setdefault(line, [0, 0])
        entry[0] += ev.dur or 0
        entry[1] += 1
    rows = sorted(acc.items(), key=lambda kv: -kv[1][0])[:k]
    return [{"line": line, "wait_cycles": cyc, "transactions": cnt}
            for line, (cyc, cnt) in rows]


def top_stores(data: TraceData, k: int = 10) -> List[dict]:
    """Top-K bounce→retry chains by attributed stall (chain length)."""
    rows = []
    for ev in data.spans("bounce_chain"):
        args = ev.args or {}
        rows.append({
            "store_id": args.get("store_id"), "core": ev.track,
            "line": args.get("line"), "word": args.get("word"),
            "retries": args.get("retries"), "dur": ev.dur or 0,
            "outcome": args.get("outcome"),
        })
    rows.sort(key=lambda r: -r["dur"])
    return rows[:k]


# ---------------------------------------------------------------------------
# offline attribution replay
# ---------------------------------------------------------------------------


def _overlap(chains: List[tuple], lo: float, hi: float) -> float:
    """Total intersection of ``[lo, hi]`` with the (disjoint) chain
    intervals of one core."""
    total = 0.0
    for c_lo, c_hi in chains:
        w = min(hi, c_hi) - max(lo, c_lo)
        if w > 0:
            total += w
    return total


def replay_attribution(data: TraceData,
                       label: Optional[str] = None) -> Dict[str, object]:
    """Rebuild the attribution tree from a trace alone.

    Must agree leaf-for-leaf with the online
    :meth:`repro.obs.attrib.CycleAttribution.tree` of the same run —
    that agreement is the cross-check of the whole trace pipeline
    (pinned by ``tests/obs/test_attrib.py``).
    """
    if data.dropped:
        raise AnalysisError(
            f"trace dropped {data.dropped} events (max_events cap): "
            "attribution replay needs a complete trace"
        )
    prov = data.provenance
    design = prov.get("design")
    num_cores = prov.get("cores")
    if design is None or num_cores is None:
        raise AnalysisError("provenance lacks design/cores")

    summaries = data.instants("core_summary")
    if len(summaries) != num_cores:
        raise AnalysisError(
            f"expected {num_cores} core_summary records, found "
            f"{len(summaries)} — trace predates attribution support?"
        )
    coarse: List[Optional[dict]] = [None] * num_cores
    cycles = 0
    for ev in summaries:
        args = ev.args or {}
        coarse[ev.track] = {
            "busy": args["busy"],
            "fence_stall": args["fence_stall"],
            "other_stall": args["other_stall"],
        }
        cycles = args["cycles"]
    if any(c is None for c in coarse):
        raise AnalysisError("core_summary records do not cover every core")

    # per-core bounce-chain intervals (disjoint: one head store in
    # flight per core).  Incomplete chains still bound completed sf /
    # recovery windows correctly — an sf or recovery that *completed*
    # ended with a drained write buffer, so any chain still open at
    # finalize started after that window closed.
    chains: List[List[tuple]] = [[] for _ in range(num_cores)]
    for ev in data.spans("bounce_chain"):
        chains[ev.track].append((ev.ts, ev.ts + (ev.dur or 0)))

    leaves: List[Dict[str, float]] = [{} for _ in range(num_cores)]

    def add(core: int, leaf: str, value: float) -> None:
        d = leaves[core]
        d[leaf] = d.get(leaf, 0.0) + value

    is_cfence = design == "C-fence"
    for ev in data.spans("sf"):
        args = ev.args or {}
        if "outcome" in args or args.get("incomplete"):
            continue  # squashed or cut off: never charged online
        if is_cfence:
            # the sf span wraps the whole centralized-table episode;
            # its duration equals the cfence charge
            add(ev.track, "cfence", ev.dur)
            continue
        extra = args.get("extra", 0)
        lo, hi = ev.ts, ev.ts + ev.dur - extra
        bounce = _overlap(chains[ev.track], lo, hi)
        prefix = "sf_demoted" if args.get("demoted") else "sf"
        add(ev.track, prefix + ".drain", (hi - lo) - bounce)
        add(ev.track, prefix + ".bounce", bounce)
        add(ev.track, prefix + ".serialize", extra)

    for ev in data.spans("recovery"):
        args = ev.args or {}
        if "outcome" in args or args.get("incomplete"):
            continue
        extra = args.get("extra", 0)
        lo, hi = ev.ts, ev.ts + ev.dur - extra
        bounce = _overlap(chains[ev.track], lo, hi)
        add(ev.track, "recovery.drain", (hi - lo) - bounce)
        add(ev.track, "recovery.bounce", bounce)
        add(ev.track, "recovery.restart", extra)

    for ev in data.spans("load_stall"):
        reason = (ev.args or {}).get("reason", "fence")
        add(ev.track, "load_stall." + reason, ev.dur)

    for ev in data.spans("mem_stall"):
        add(ev.track, "mem", (ev.args or {})["charge"])

    for ev in data.spans("wb_full_stall"):
        add(ev.track, "wb_full", ev.dur)

    for ev in data.spans("rmw_stall"):
        add(ev.track, "rmw", (ev.args or {})["charge"])

    return build_tree(num_cores, design, leaves, coarse, cycles,
                      label=label)
