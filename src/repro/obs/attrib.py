"""Cycle attribution: exact, conservation-checked stall decomposition.

The coarse three-bucket accounting (:class:`~repro.common.stats.
CoreCycleBreakdown`: Busy / Fence Stall / Other Stall) says *how much*
time a core lost; this module says *why*.  A
:class:`CycleAttribution` attached to a machine splits every coarse
stall charge into a fine leaf at the exact program point that charges
the coarse bucket, producing a per-core tree::

    total (stats.cycles)
    ├── busy
    ├── fence_stall                       == breakdown.fence_stall
    │   ├── sf          {drain, bounce, serialize}
    │   ├── sf_demoted  {drain, bounce, serialize}   (Wee confinement)
    │   ├── recovery    {drain, bounce, restart}     (W+ rollback)
    │   ├── load_stall  {fence, bs_full, grt_pending,
    │   │                remote_ps, cross_bank}      (parked loads)
    │   └── cfence                                   (C-fence episodes)
    ├── other_stall                       == breakdown.other_stall
    │   ├── mem      (miss latency beyond the issue slot)
    │   ├── wb_full  (store blocked on a full write buffer)
    │   └── rmw      (atomic drain + round trip beyond the issue slot)
    └── idle  = cycles − (busy + fence + other)

Conservation contract: the fine leaves under each bucket sum to the
coarse bucket **bit-exactly** — every fine charge is taken at the same
site, from the same expression, as the coarse charge it refines.  With
a power-of-two ``issue_width`` every charge is a dyadic rational, so
float accumulation never rounds and the sums are order-independent;
:func:`conservation_errors` asserts exact equality, not a tolerance.

The *bounce* sub-leaf of an sf/recovery drain is the time the drain
window overlapped a bounce→retry chain of this core's head store.  Per
core at most one store is ever in flight, so chains never overlap and
a monotone "total chain time" accumulator (snapshot at window start,
delta at window end) measures the intersection exactly — the same
value offline replay obtains by clipping ``bounce_chain`` trace spans
to the drain window (:func:`repro.obs.analyze.replay_attribution`).

Zero-cost-when-off contract: like the tracer, every hook site guards
on a cached ``attrib is None``, and **every** fine-leaf site lives on
an already-slow path (a scheduled continuation, a drain completion, a
policy callback) — the ``Core._advance`` hot loop has no attribution
hook at all (busy is read off the coarse breakdown at tree build).
"""

from __future__ import annotations

from typing import Dict, List, Optional

SCHEMA = "repro.attrib/1"
DIFF_SCHEMA = "repro.attrib.diff/1"

#: every parking reason ``Core._stall_load`` can record ("fence" is the
#: generic sf/pending-wf reason; the rest are Wee/BS-specific)
LOAD_STALL_REASONS = (
    "fence", "bs_full", "grt_pending", "remote_ps", "cross_bank",
)

#: cap on distinct lines tracked by the hot-line accumulator (new lines
#: past the cap are folded into an "(other)" bucket, never dropped)
HOT_LINE_CAP = 4096


class CycleAttribution:
    """Per-core fine-grained stall accumulators for one machine run.

    Attach with :meth:`repro.sim.machine.Machine.attach_attrib` (or
    ``Observability(attrib=True)``) before ``run()``; read the result
    with :meth:`tree` afterwards.
    """

    def __init__(self):
        self._queue = None
        self._stats = None
        self.design = None
        self.num_cores = 0
        #: per-core flat leaf accumulators, keyed "sf.drain", "mem", ...
        self.leaves: List[Dict[str, float]] = []
        #: per-core design-event counters (order promotions, demotions)
        self.counts: List[Dict[str, int]] = []
        #: per-core {line: [wait_cycles, transactions]} hot-line table
        self.hot_lines: List[Dict[int, list]] = []
        #: per-core write-buffer peak occupancy
        self.wb_peak: List[int] = []
        # bounce-chain clock: per-core monotone total-chain-time
        # accumulator + the open chain's start cycle (chains of one
        # core never overlap: only the head store is ever in flight)
        self._chain_accum: List[int] = []
        self._chain_open_t0: List[Optional[int]] = []
        # open episode state: (t0, chain snapshot[, demoted])
        self._sf_open: List[Optional[tuple]] = []
        self._rec_open: List[Optional[tuple]] = []

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def bind(self, machine) -> None:
        """Size the accumulators for *machine* (Machine.attach_attrib)."""
        self._queue = machine.queue
        self._stats = machine.stats
        self.design = machine.params.fence_design
        n = machine.params.num_cores
        self.num_cores = n
        self.leaves = [{} for _ in range(n)]
        self.counts = [{} for _ in range(n)]
        self.hot_lines = [{} for _ in range(n)]
        self.wb_peak = [0] * n
        self._chain_accum = [0] * n
        self._chain_open_t0 = [None] * n
        self._sf_open = [None] * n
        self._rec_open = [None] * n

    @property
    def now(self) -> int:
        return self._queue.now if self._queue is not None else 0

    def _add(self, core: int, leaf: str, cycles: float) -> None:
        d = self.leaves[core]
        d[leaf] = d.get(leaf, 0.0) + cycles

    # ------------------------------------------------------------------
    # bounce-chain clock (Core._drain_bounced / _drain_merged)
    # ------------------------------------------------------------------

    def chain_open(self, core: int) -> None:
        """The head store's first bounce: a bounce→retry chain opened."""
        self._chain_open_t0[core] = self.now

    def chain_close(self, core: int) -> None:
        """The bounced head store finally merged: the chain closed."""
        t0 = self._chain_open_t0[core]
        if t0 is not None:
            self._chain_accum[core] += self.now - t0
            self._chain_open_t0[core] = None

    def _chain_time(self, core: int) -> int:
        """Total cycles this core has spent with an open chain so far."""
        t = self._chain_accum[core]
        t0 = self._chain_open_t0[core]
        if t0 is not None:
            t += self.now - t0
        return t

    # ------------------------------------------------------------------
    # sf episodes (Core._run_strong_fence)
    # ------------------------------------------------------------------

    def sf_begin(self, core: int, demoted: bool = False) -> None:
        self._sf_open[core] = (self.now, self._chain_time(core), demoted)

    def sf_end(self, core: int, extra: float) -> None:
        open_ = self._sf_open[core]
        if open_ is None:  # pragma: no cover - defensive
            return
        self._sf_open[core] = None
        t0, snap, demoted = open_
        bounce = self._chain_time(core) - snap
        drain = (self.now - t0) - bounce
        prefix = "sf_demoted" if demoted else "sf"
        self._add(core, prefix + ".drain", drain)
        self._add(core, prefix + ".bounce", bounce)
        self._add(core, prefix + ".serialize", extra)

    def sf_abort(self, core: int) -> None:
        """A W+ rollback squashed the in-flight sf wait: no charge was
        (or will be) made for it, so drop the open-window snapshot."""
        self._sf_open[core] = None

    # ------------------------------------------------------------------
    # W+ recovery episodes (Core._recover)
    # ------------------------------------------------------------------

    def recovery_begin(self, core: int) -> None:
        self._rec_open[core] = (self.now, self._chain_time(core))

    def recovery_end(self, core: int, extra: float) -> None:
        open_ = self._rec_open[core]
        if open_ is None:  # pragma: no cover - defensive
            return
        self._rec_open[core] = None
        t0, snap = open_
        bounce = self._chain_time(core) - snap
        drain = (self.now - t0) - bounce
        self._add(core, "recovery.drain", drain)
        self._add(core, "recovery.bounce", bounce)
        self._add(core, "recovery.restart", extra)

    # ------------------------------------------------------------------
    # remaining fence-stall and other-stall charges
    # ------------------------------------------------------------------

    def load_stall(self, core: int, reason: str, cycles: float) -> None:
        self._add(core, "load_stall." + reason, cycles)

    def cfence(self, core: int, cycles: float) -> None:
        self._add(core, "cfence", cycles)

    def wb_full(self, core: int, cycles: float) -> None:
        self._add(core, "wb_full", cycles)

    def mem(self, core: int, cycles: float) -> None:
        self._add(core, "mem", cycles)

    def rmw(self, core: int, cycles: float) -> None:
        self._add(core, "rmw", cycles)

    # ------------------------------------------------------------------
    # metadata (not part of the conservation-checked tree)
    # ------------------------------------------------------------------

    def note(self, core: int, key: str, n: int = 1) -> None:
        """Count a design event (order promotion, demotion, ...)."""
        d = self.counts[core]
        d[key] = d.get(key, 0) + n

    def l1_wait(self, core: int, line: int, cycles: int) -> None:
        """One finished L1 miss transaction waited *cycles* on *line*."""
        table = self.hot_lines[core]
        entry = table.get(line)
        if entry is None:
            if len(table) >= HOT_LINE_CAP:
                entry = table.get("(other)")
                if entry is None:
                    entry = table["(other)"] = [0, 0]
            else:
                entry = table[line] = [0, 0]
        entry[0] += cycles
        entry[1] += 1

    def wb_push(self, core: int, depth: int) -> None:
        if depth > self.wb_peak[core]:
            self.wb_peak[core] = depth

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def tree(self, label: Optional[str] = None) -> Dict[str, object]:
        """The conservation-checked attribution tree of the run."""
        coarse = [b.as_dict() for b in self._stats.breakdown]
        # stats.cycles is stamped at the end of Machine.run(); on an
        # aborted run (deadlock / strict-sanitizer postmortem) fall back
        # to the queue clock so idle stays meaningful
        cycles = self._stats.cycles or self.now
        return build_tree(
            self.num_cores, self.design, self.leaves, coarse,
            cycles, label=label,
        )

    def design_events(self) -> Dict[str, int]:
        """Aggregate design-event counters (tree metadata)."""
        out: Dict[str, int] = {}
        for d in self.counts:
            for k, v in d.items():
                out[k] = out.get(k, 0) + v
        return out

    def top_lines(self, k: int = 10) -> List[Dict[str, object]]:
        """Top-*k* hottest lines by accumulated L1 transaction wait."""
        merged: Dict[object, list] = {}
        for table in self.hot_lines:
            for line, (cycles, count) in table.items():
                entry = merged.setdefault(line, [0, 0])
                entry[0] += cycles
                entry[1] += count
        rows = sorted(merged.items(), key=lambda kv: -kv[1][0])[:k]
        return [
            {"line": line, "wait_cycles": cyc, "transactions": cnt}
            for line, (cyc, cnt) in rows
        ]


# ---------------------------------------------------------------------------
# tree construction (shared by the online engine and offline replay)
# ---------------------------------------------------------------------------


def _design_value(design) -> str:
    return design.value if hasattr(design, "value") else str(design)


def _core_node(cid: int, leaves: Dict[str, float],
               coarse: Dict[str, float], cycles: float) -> Dict[str, object]:
    g = leaves.get
    load_stall = {r: g("load_stall." + r, 0.0) for r in LOAD_STALL_REASONS}
    for key, value in leaves.items():
        if key.startswith("load_stall."):
            reason = key[len("load_stall."):]
            if reason not in load_stall:  # future-proof: unknown reason
                load_stall[reason] = value
    fence = {
        "total": coarse["fence_stall"],
        "sf": {
            "drain": g("sf.drain", 0.0),
            "bounce": g("sf.bounce", 0.0),
            "serialize": g("sf.serialize", 0.0),
        },
        "sf_demoted": {
            "drain": g("sf_demoted.drain", 0.0),
            "bounce": g("sf_demoted.bounce", 0.0),
            "serialize": g("sf_demoted.serialize", 0.0),
        },
        "recovery": {
            "drain": g("recovery.drain", 0.0),
            "bounce": g("recovery.bounce", 0.0),
            "restart": g("recovery.restart", 0.0),
        },
        "load_stall": load_stall,
        "cfence": g("cfence", 0.0),
    }
    other = {
        "total": coarse["other_stall"],
        "mem": g("mem", 0.0),
        "wb_full": g("wb_full", 0.0),
        "rmw": g("rmw", 0.0),
    }
    accounted = coarse["busy"] + coarse["fence_stall"] + coarse["other_stall"]
    return {
        "core": cid,
        "cycles": cycles,
        "busy": coarse["busy"],
        "fence_stall": fence,
        "other_stall": other,
        # negative on cycle-budget-cutoff runs whose trailing charges
        # (sf serialization, recovery restart) land past the final
        # clock; conservation of the stall buckets still holds.
        "idle": cycles - accounted,
    }


def _merge_into(acc: Dict[str, object], node: Dict[str, object]) -> None:
    for key, value in node.items():
        if key == "core":
            continue
        if isinstance(value, dict):
            sub = acc.setdefault(key, {})
            _merge_into(sub, value)
        else:
            acc[key] = acc.get(key, 0.0) + value


def build_tree(num_cores: int, design, leaves, coarse, cycles,
               label: Optional[str] = None) -> Dict[str, object]:
    """Assemble the attribution tree from flat per-core leaf maps.

    *leaves* is one flat dict per core ("sf.drain" -> cycles, ...);
    *coarse* is the matching list of ``CoreCycleBreakdown.as_dict()``
    buckets.  Both the online engine and the offline trace replay end
    here, so the two trees are structurally identical by construction.
    """
    cores = [
        _core_node(cid, leaves[cid], coarse[cid], cycles)
        for cid in range(num_cores)
    ]
    machine: Dict[str, object] = {}
    for node in cores:
        _merge_into(machine, node)
    tree = {
        "schema": SCHEMA,
        "design": _design_value(design),
        "num_cores": num_cores,
        "cycles": cycles,
        "cores": cores,
        # machine node: element-wise sum over cores ("cycles" is then
        # core-cycles, i.e. num_cores * wall cycles)
        "machine": machine,
    }
    if label:
        tree["label"] = label
    return tree


# ---------------------------------------------------------------------------
# conservation check
# ---------------------------------------------------------------------------


def conservation_errors(tree: Dict[str, object]) -> List[str]:
    """Exact-equality conservation check; returns human-readable errors.

    Empty list == the tree conserves: under every core, the fine
    leaves sum bit-exactly to their coarse bucket, and busy + buckets
    + idle reproduce the core's total cycles.
    """
    errors: List[str] = []
    for node in tree["cores"]:
        cid = node["core"]
        fence = node["fence_stall"]
        fence_leaves = (
            sum(fence["sf"].values())
            + sum(fence["sf_demoted"].values())
            + sum(fence["recovery"].values())
            + sum(fence["load_stall"].values())
            + fence["cfence"]
        )
        if fence_leaves != fence["total"]:
            errors.append(
                f"core {cid}: fence_stall leaves sum to {fence_leaves!r} "
                f"but the coarse bucket is {fence['total']!r}"
            )
        other = node["other_stall"]
        other_leaves = other["mem"] + other["wb_full"] + other["rmw"]
        if other_leaves != other["total"]:
            errors.append(
                f"core {cid}: other_stall leaves sum to {other_leaves!r} "
                f"but the coarse bucket is {other['total']!r}"
            )
        accounted = (node["busy"] + fence["total"] + other["total"]
                     + node["idle"])
        if accounted != node["cycles"]:
            errors.append(
                f"core {cid}: busy+fence+other+idle = {accounted!r} "
                f"!= cycles {node['cycles']!r}"
            )
    return errors


# ---------------------------------------------------------------------------
# flatten / diff
# ---------------------------------------------------------------------------


def flatten_node(node: Dict[str, object],
                 prefix: str = "") -> Dict[str, float]:
    """Flat "a.b.c" -> value view of one tree node (core or machine)."""
    out: Dict[str, float] = {}
    for key in sorted(node):
        if key == "core":
            continue
        value = node[key]
        if isinstance(value, dict):
            out.update(flatten_node(value, prefix + key + "."))
        else:
            out[prefix + key] = value
    return out


def diff_trees(base: Dict[str, object], other: Dict[str, object],
               label_base: Optional[str] = None,
               label_other: Optional[str] = None) -> Dict[str, object]:
    """Diff two attribution trees' machine aggregates.

    Rows cover every component that is nonzero on either side, sorted
    by absolute cycle movement, so the first rows *name the components
    that moved* between the two runs.
    """
    flat_base = flatten_node(base["machine"])
    flat_other = flatten_node(other["machine"])
    rows = []
    for path in sorted(set(flat_base) | set(flat_other)):
        x = flat_base.get(path, 0.0)
        y = flat_other.get(path, 0.0)
        if x == 0.0 and y == 0.0:
            continue
        rows.append({
            "path": path,
            "base": x,
            "other": y,
            "delta": y - x,
            "ratio": (y / x) if x else None,
        })
    rows.sort(key=lambda r: -abs(r["delta"]))
    return {
        "schema": DIFF_SCHEMA,
        "base": {
            "label": label_base or base.get("label"),
            "design": base["design"],
        },
        "other": {
            "label": label_other or other.get("label"),
            "design": other["design"],
        },
        "rows": rows,
    }
