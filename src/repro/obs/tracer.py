"""The trace recorder: typed span/instant records for one run.

Record model
------------
A :class:`TraceEvent` is one of

* a **span** (``ph="X"``): an episode with a start cycle and duration —
  fence episodes, bounce→retry chains, W+ recovery timelines, directory
  transactions, L1 miss round trips, NoC message flights, GRT deposits,
  fence-induced load stalls;
* an **instant** (``ph="i"``): a point event — directory bounces,
  Order/Conditional-Order completions, CO failures, PutM writebacks,
  W+ timeout arming, RMW retries, Order promotions, l-mf/C-fence
  fast-path decisions;
* a **counter sample** (``ph="C"``): a numeric timeseries point —
  write-buffer depth per core.

Tracks mirror the machine: one per core, one per directory bank, one
for the NoC.  The exporters (:mod:`repro.obs.export`) map them onto
Chrome ``trace_event`` threads so Perfetto shows one swimlane per core
plus directory/NoC lanes.

Consistency contract (pinned by ``tests/obs/test_trace_consistency``):
every hook is emitted at the *same site* that increments the
corresponding :class:`~repro.common.stats.MachineStats` counter, so
counts derived from a trace reconcile exactly with the stats of the
same run — e.g. ``#sf spans + #converted wf spans == total_sf`` and
``#bounce instants == stats.bounces``.

Hook cost contract: hooks are only ever reached behind a
``tracer is None`` guard at the call site (``NULL_TRACER`` *is*
``None``); a disabled run executes one attribute load + identity test
per guarded site and nothing else.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: The "disabled" tracer. Deliberately ``None`` — hot paths guard with
#: ``tracer is None`` (pointer identity) rather than calling through a
#: null object, so tracing-off costs no dynamic dispatch.
NULL_TRACER = None

# Track ids (exporters map these to Chrome tids / Perfetto lanes).
#: directory bank *b* traces on track ``TRACK_DIR_BASE + b``
TRACK_DIR_BASE = 100
#: all NoC message spans share one track
TRACK_NOC = 900
#: interval metrics counters (exported from the MetricsCollector)
TRACK_METRICS = 901


class TraceEvent:
    """One trace record (span, instant or counter sample)."""

    __slots__ = ("ph", "track", "name", "cat", "ts", "dur", "args")

    def __init__(self, ph, track, name, cat, ts, dur=None, args=None):
        self.ph = ph        # "X" span | "i" instant | "C" counter
        self.track = track  # core id, TRACK_DIR_BASE+bank, TRACK_NOC, ...
        self.name = name
        self.cat = cat
        self.ts = ts        # start cycle
        self.dur = dur      # cycles (None while the span is open)
        self.args = args    # dict or None

    @property
    def open(self) -> bool:
        return self.ph == "X" and self.dur is None

    def to_dict(self) -> dict:
        d = {
            "ph": self.ph, "track": self.track, "name": self.name,
            "cat": self.cat, "ts": self.ts,
        }
        if self.dur is not None:
            d["dur"] = self.dur
        if self.args:
            d["args"] = self.args
        return d

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"<TraceEvent {self.ph} {self.name} track={self.track} "
                f"ts={self.ts} dur={self.dur}>")


class Tracer:
    """Collects :class:`TraceEvent` records for one machine run.

    Spans are appended to ``events`` when they *open* (so the list is
    naturally start-ordered) and their ``dur`` is filled in when they
    close; :meth:`finalize` closes whatever is still open at the end of
    the run with an ``incomplete`` marker, so cycle-budget cutoffs are
    visible in the trace instead of silently vanishing.

    ``max_events`` bounds the buffer: past the cap, *new* records are
    counted in ``dropped`` instead of stored (already-open spans still
    close normally).  The default is unbounded — a full trace is the
    point of an explicitly-traced run.
    """

    def __init__(self, max_events: Optional[int] = None):
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.dropped = 0
        self._queue = None  # bound by Machine.attach_tracer
        # open-episode indices
        self._open_wf: Dict[Tuple[int, int], TraceEvent] = {}
        self._wf_by_core: Dict[int, List[TraceEvent]] = {}
        self._open_sf: Dict[int, TraceEvent] = {}
        self._open_chains: Dict[Tuple[int, int], TraceEvent] = {}
        self._open_recovery: Dict[int, TraceEvent] = {}
        self._open_dir: Dict[Tuple[int, int], TraceEvent] = {}

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def bind(self, queue) -> None:
        """Attach the machine's event queue (the trace clock)."""
        self._queue = queue

    @property
    def now(self) -> int:
        return self._queue.now if self._queue is not None else 0

    def _emit(self, ev: TraceEvent) -> Optional[TraceEvent]:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return None
        self.events.append(ev)
        return ev

    def _instant(self, track, name, cat, args=None) -> None:
        self._emit(TraceEvent("i", track, name, cat, self.now, 0, args))

    # ------------------------------------------------------------------
    # fence episodes (core tracks)
    # ------------------------------------------------------------------

    def sf_begin(self, core: int, demoted: bool = False) -> None:
        """A strong fence started executing (drain + serialization).

        ``demoted=True`` marks a Wee wf that failed PS confinement at
        retirement and runs this dynamic instance as an sf.
        """
        args = {"demoted": True} if demoted else None
        ev = self._emit(TraceEvent("X", core, "sf", "fence", self.now,
                                   None, args))
        if ev is not None:
            self._open_sf[core] = ev

    def sf_end(self, core: int, extra: float = 0, **attrs) -> None:
        """The sf's drain finished; *extra* covers serialization cycles
        charged past the drain point.  *extra* is recorded in the span
        args so offline attribution can split the drain window
        (``[ts, ts+dur-extra]``) from the serialization tail."""
        ev = self._open_sf.pop(core, None)
        if ev is not None:
            ev.dur = (self.now - ev.ts) + extra
            ev.args = dict(ev.args or (), extra=extra, **attrs)

    def sf_abort(self, core: int, reason: str = "recovery") -> None:
        """An sf wait was squashed (W+ rollback hit mid-drain)."""
        ev = self._open_sf.pop(core, None)
        if ev is not None:
            ev.dur = self.now - ev.ts
            ev.args = dict(ev.args or (), outcome=reason)

    def wf_retire(self, core: int, fence_id: int, pending_stores: int) -> None:
        """A weak fence retired with *pending_stores* pre-fence stores."""
        ev = self._emit(TraceEvent(
            "X", core, "wf", "fence", self.now, None,
            {"fence_id": fence_id, "pending_stores": pending_stores},
        ))
        if ev is not None:
            self._open_wf[(core, fence_id)] = ev
            self._wf_by_core.setdefault(core, []).append(ev)

    def wf_trivial(self, core: int) -> None:
        """A wf retired over an empty write buffer: complete at birth."""
        self._emit(TraceEvent("X", core, "wf", "fence", self.now, 0,
                              {"trivial": True}))

    def wf_convert(self, core: int, fence_id: int) -> None:
        """Wee dynamic conversion: a post-fence access left the confined
        directory module mid-flight; the wf is re-counted as an sf."""
        ev = self._open_wf.get((core, fence_id))
        if ev is not None:
            ev.args["converted"] = True

    def wf_complete(self, core: int, fence_id: int, bs_lines: int) -> None:
        """All pre-fence stores merged; the fence group completed."""
        ev = self._open_wf.pop((core, fence_id), None)
        if ev is not None:
            ev.dur = self.now - ev.ts
            ev.args["bs_lines"] = bs_lines
            lst = self._wf_by_core.get(core)
            if lst is not None:
                try:
                    lst.remove(ev)
                except ValueError:  # pragma: no cover - defensive
                    pass

    def wf_unwind_all(self, core: int, reason: str = "recovery") -> int:
        """A W+ rollback cleared every incomplete fence of *core*."""
        unwound = 0
        for ev in self._wf_by_core.pop(core, ()):  # oldest first
            self._open_wf.pop((core, ev.args["fence_id"]), None)
            ev.dur = self.now - ev.ts
            ev.args["outcome"] = reason
            unwound += 1
        return unwound

    # ------------------------------------------------------------------
    # fence-induced load stalls (core tracks)
    # ------------------------------------------------------------------

    def load_stall(self, core: int, t0: int, reason: str) -> None:
        """A parked post-fence load resumed; record the whole stall."""
        self._emit(TraceEvent("X", core, "load_stall", "stall", t0,
                              self.now - t0, {"reason": reason}))

    # ------------------------------------------------------------------
    # other-stall charges (core tracks) — one span per coarse
    # ``other_stall`` charge, carrying the exact charged amount so a
    # trace replay reattributes bit-identically
    # ------------------------------------------------------------------

    def mem_stall(self, core: int, t0: int, charge: float) -> None:
        """A demand load completed; *charge* is the latency beyond the
        issue slot that was billed to ``other_stall``."""
        self._emit(TraceEvent("X", core, "mem_stall", "stall", t0,
                              self.now - t0, {"charge": charge}))

    def wb_full_stall(self, core: int, t0: int) -> None:
        """A store sat blocked on a full write buffer; the span duration
        equals the billed backpressure wait."""
        self._emit(TraceEvent("X", core, "wb_full_stall", "stall", t0,
                              self.now - t0))

    def rmw_stall(self, core: int, t0: int, charge: float) -> None:
        """An atomic RMW completed; *charge* is the drain + round-trip
        latency beyond the issue slot billed to ``other_stall``."""
        self._emit(TraceEvent("X", core, "rmw_stall", "stall", t0,
                              self.now - t0, {"charge": charge}))

    # ------------------------------------------------------------------
    # bounce → retry chains (core tracks, keyed by write)
    # ------------------------------------------------------------------

    def store_bounce(self, core: int, store_id: int, word: int, line: int,
                     retries: int, ordered: bool) -> None:
        """The head store's transaction was refused by a remote BS."""
        key = (core, store_id)
        ev = self._open_chains.get(key)
        if ev is None:
            ev = self._emit(TraceEvent(
                "X", core, "bounce_chain", "bounce", self.now, None,
                {"store_id": store_id, "word": word, "line": line,
                 "retries": retries, "ordered": ordered},
            ))
            if ev is None:
                return
            self._open_chains[key] = ev
        else:
            ev.args["retries"] = retries
            if ordered:
                ev.args["ordered"] = True

    def store_chain_end(self, core: int, store_id: int,
                        outcome: str = "merged") -> None:
        """The bounced write finally merged (or was promoted and merged)."""
        ev = self._open_chains.pop((core, store_id), None)
        if ev is not None:
            ev.dur = self.now - ev.ts
            ev.args["outcome"] = outcome

    def rmw_retry(self, core: int, word: int) -> None:
        """An atomic RMW's GetX was bounced and will retry."""
        self._instant(core, "rmw_retry", "bounce", {"word": word})

    # ------------------------------------------------------------------
    # W+ recovery timelines (core tracks)
    # ------------------------------------------------------------------

    def timeout_armed(self, core: int, delay: int) -> None:
        """Deadlock suspicion (bouncing ∧ being-bounced): timer armed."""
        self._instant(core, "wplus_timeout", "recovery", {"delay": delay})

    def recovery_begin(self, core: int, fence_id: int, checkpoint,
                       dropped_stores: int, bs_cleared: int,
                       fences_unwound: int) -> None:
        """Timeout expired with the suspicion still true: rollback."""
        ev = self._emit(TraceEvent(
            "X", core, "recovery", "recovery", self.now, None,
            {"fence_id": fence_id, "checkpoint": checkpoint,
             "dropped_stores": dropped_stores, "bs_cleared": bs_cleared,
             "fences_unwound": fences_unwound},
        ))
        if ev is not None:
            self._open_recovery[core] = ev

    def recovery_end(self, core: int, extra: float = 0) -> None:
        """Post-rollback drain finished (+ *extra* restart cycles).
        Like :meth:`sf_end`, *extra* goes into the args for replay."""
        ev = self._open_recovery.pop(core, None)
        if ev is not None:
            ev.dur = (self.now - ev.ts) + extra
            ev.args["extra"] = extra

    def storm_demotion(self, core: int, until: int) -> None:
        """Recovery-storm monitor demoted this core's wfs to sf."""
        self._instant(core, "storm_demotion", "recovery", {"until": until})

    # ------------------------------------------------------------------
    # fault injection (any track)
    # ------------------------------------------------------------------

    def fault(self, track: int, site: str, args: Optional[dict] = None) -> None:
        """One injected fault fired (repro.faults); *track* places the
        instant on the lane of the component that absorbed it."""
        self._instant(track, f"fault_{site}", "fault", args)

    # ------------------------------------------------------------------
    # protocol sanitizer (core tracks, or TRACK_METRICS when core-less)
    # ------------------------------------------------------------------

    def sanitizer_violation(self, core: Optional[int], invariant: str,
                            args: Optional[dict] = None) -> None:
        """The runtime sanitizer observed a structural violation."""
        track = core if core is not None else TRACK_METRICS
        self._instant(track, f"sanitizer_{invariant}", "sanitizer", args)

    # ------------------------------------------------------------------
    # fence-design internals (core tracks)
    # ------------------------------------------------------------------

    def order_promotion(self, core: int, count: int, conditional: bool) -> None:
        """WS+/SW+ promoted *count* bouncing pre-wf writes to Order/CO."""
        self._instant(core, "order_promotion", "fence",
                      {"count": count, "conditional": conditional})

    def lmf_decision(self, core: int, fast: bool) -> None:
        """l-mf took the store-conditional fast path (or fell back)."""
        self._instant(core, "lmf_fast" if fast else "lmf_fallback", "fence")

    def cfence_decision(self, core: int, skipped: bool) -> None:
        """C-fence consulted the centralized table: skip or stall."""
        self._instant(core, "cfence_skip" if skipped else "cfence_stall",
                      "fence")

    def grt_deposit(self, core: int, bank: int, n_lines: int, t0: int) -> None:
        """Wee GRT deposit round trip completed (reply back at core)."""
        self._emit(TraceEvent("X", core, "grt_deposit", "grt", t0,
                              self.now - t0,
                              {"bank": bank, "ps_lines": n_lines}))

    # ------------------------------------------------------------------
    # L1 (core tracks)
    # ------------------------------------------------------------------

    def l1_miss(self, core: int, line: int, kind: str, t0: int,
                outcome: str) -> None:
        """An L1 miss transaction finished (filled / merged / bounced)."""
        self._emit(TraceEvent("X", core, "l1_miss", "l1", t0, self.now - t0,
                              {"line": line, "kind": kind,
                               "outcome": outcome}))

    def writeback(self, core: int, line: int, keep_sharer: bool) -> None:
        """A dirty eviction issued a PutM (keep-sharer when BS-held)."""
        self._instant(core, "writeback", "l1",
                      {"line": line, "keep_sharer": keep_sharer})

    # ------------------------------------------------------------------
    # directory transactions (dir tracks)
    # ------------------------------------------------------------------

    def dir_begin(self, bank: int, txn_id: int, kind: str, line: int,
                  requester: int) -> None:
        """A coherence request arrived at its home bank."""
        ev = self._emit(TraceEvent(
            "X", TRACK_DIR_BASE + bank, "dir_txn", "dir", self.now, None,
            {"txn_id": txn_id, "kind": kind, "line": line,
             "requester": requester},
        ))
        if ev is not None:
            self._open_dir[(bank, txn_id)] = ev

    def dir_end(self, bank: int, txn_id: int, reply: str) -> None:
        """The transaction's reply was processed; the line is released."""
        ev = self._open_dir.pop((bank, txn_id), None)
        if ev is not None:
            ev.dur = self.now - ev.ts
            ev.args["reply"] = reply

    def dir_putm(self, bank: int, line: int, requester: int) -> None:
        """A fire-and-forget dirty writeback arrived."""
        self._instant(TRACK_DIR_BASE + bank, "putm", "dir",
                      {"line": line, "requester": requester})

    def dir_bounce(self, bank: int, line: int, requester: int) -> None:
        """A GetX failed wholesale: some sharer's BS refused the INV."""
        self._instant(TRACK_DIR_BASE + bank, "bounce", "dir",
                      {"line": line, "requester": requester})

    def dir_order(self, bank: int, line: int, requester: int,
                  conditional: bool) -> None:
        """An Order / Conditional-Order operation completed (§3.3.1/2)."""
        self._instant(TRACK_DIR_BASE + bank,
                      "cond_order" if conditional else "order", "dir",
                      {"line": line, "requester": requester})

    def dir_co_fail(self, bank: int, line: int, requester: int) -> None:
        """A Conditional Order found a true-sharing BS match and failed."""
        self._instant(TRACK_DIR_BASE + bank, "co_fail", "dir",
                      {"line": line, "requester": requester})

    # ------------------------------------------------------------------
    # NoC (single shared track)
    # ------------------------------------------------------------------

    def noc_msg(self, src: int, dst: int, kind: str, nbytes: int,
                lat: int, retry: bool) -> None:
        """One message flight; span duration = delivery latency."""
        args = {"src": src, "dst": dst, "kind": kind, "bytes": nbytes}
        if retry:
            args["retry"] = True
        self._emit(TraceEvent("X", TRACK_NOC, "msg", "noc", self.now,
                              lat, args))

    # ------------------------------------------------------------------
    # write buffer (core tracks, counter samples)
    # ------------------------------------------------------------------

    def wb_depth(self, core: int, depth: int) -> None:
        """Write-buffer occupancy changed (push or head merge)."""
        self._emit(TraceEvent("C", core, "wb_depth", "wb", self.now, 0,
                              {"value": depth}))

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Close every still-open span as ``incomplete`` (cycle-budget
        cutoffs, in-flight transactions at quiesce)."""
        now = self.now
        for index in (self._open_sf, self._open_wf, self._open_chains,
                      self._open_recovery, self._open_dir):
            for ev in index.values():
                if ev.dur is None:
                    ev.dur = now - ev.ts
                    ev.args = dict(ev.args or (), incomplete=True)
            index.clear()
        self._wf_by_core.clear()

    def core_summaries(self, stats) -> None:
        """Append one ``core_summary`` instant per core with its coarse
        cycle breakdown.  Emitted by ``Machine.run()`` after the clock
        stops; appended directly (past any ``max_events`` cap — replay
        needs them, and there are only ``num_cores`` of them)."""
        now = self.now
        for cid, b in enumerate(stats.breakdown):
            self.events.append(TraceEvent(
                "i", cid, "core_summary", "summary", now, 0,
                {"busy": b.busy, "fence_stall": b.fence_stall,
                 "other_stall": b.other_stall, "cycles": now},
            ))

    # ------------------------------------------------------------------
    # queries (summary / tests)
    # ------------------------------------------------------------------

    def spans(self, name: Optional[str] = None,
              cat: Optional[str] = None) -> List[TraceEvent]:
        return [ev for ev in self.events
                if ev.ph == "X"
                and (name is None or ev.name == name)
                and (cat is None or ev.cat == cat)]

    def instants(self, name: Optional[str] = None,
                 cat: Optional[str] = None) -> List[TraceEvent]:
        return [ev for ev in self.events
                if ev.ph == "i"
                and (name is None or ev.name == name)
                and (cat is None or ev.cat == cat)]

    def count(self, name: str) -> int:
        return sum(1 for ev in self.events if ev.name == name)
