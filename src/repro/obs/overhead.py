"""Trace-overhead gate: prove the disabled path is still fast.

The observability hooks ride the simulator hot path, so this module is
the referee for the "zero-cost when disabled" claim: it times one
pinned ``benchmarks/perf`` case with tracing *disabled* and compares
the result against the committed ``BENCH_perf.json`` baseline — if the
disabled path regressed past the threshold (3% by default), the hooks
leaked cost into the event kernel and the gate fails.  The same run
then times the case with tracing *enabled* and with cycle-attribution
*profiling* enabled (both reported, not gated — the instrumented paths
are allowed to be slower), validates the exported Chrome-trace JSON
with :func:`repro.obs.export.validate_chrome_trace`, and checks that
the profiled run's attribution tree conserves cycles and that neither
instrumented leg perturbed the simulated stats.

Run it the way CI does::

    python -m repro.obs.overhead \
        --baseline benchmarks/perf/BENCH_perf.json \
        --out benchmarks/out/trace_overhead.json

Wall-clock gating on shared CI hosts is noisy, so the estimator is the
*minimum* wall time with an adaptive rep budget: ``wall = code + load``
and load only ever adds time, so one quiet rep reveals the code's true
cost while regressed code can never luck into a fast rep.  The gate
passes as soon as any disabled-path rep lands within the threshold and
only fails after ``--max-reps`` reps all miss it.  ``--report-only``
(log + artifact, never fail the build) remains available for hosts
that are never quiet.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import statistics
import sys
import time
from typing import Dict, List, Optional

from repro.common.params import MachineParams
from repro.obs import Observability
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.perf.harness import (
    DEFAULT_SNAPSHOT_PATH,
    PROFILES,
    host_metadata,
    load_snapshot,
)
from repro.workloads.base import REGISTRY, load_all_workloads

#: disabled-path budget: >3% slower than the committed baseline fails.
DEFAULT_THRESHOLD = 1.03
#: the fig89 case the gate times (first of the committed matrix).
DEFAULT_CASE = "fib:S+:c8:s0.5:r12345"
DEFAULT_OUT = os.path.join("benchmarks", "out", "trace_overhead.json")


def _find_case(key: str):
    """Resolve a snapshot case key to its pinned fig89 PerfCase."""
    for case in PROFILES["fig89"]:
        if case.key == key:
            return case
    known = ", ".join(c.key for c in PROFILES["fig89"])
    raise SystemExit(f"unknown fig89 case {key!r}; choose from: {known}")


#: the gate's three timed paths: hooks compiled in but off, tracing
#: on, attribution (profiling) on.  Only "disabled" is gated; the
#: other two are reported and their side artifacts validated.
MODES = ("disabled", "enabled", "profiled")


def _run_once(case, mode: str) -> Dict[str, object]:
    """One timed run; mirrors ``repro.perf.harness._time_case``
    (in-process, GC disabled around ``Machine.run`` only) so numbers
    are comparable with ``BENCH_perf.json``."""
    from repro.sim.machine import Machine

    cls = REGISTRY[case.workload]
    workload = cls(scale=case.scale)
    params = MachineParams().with_cores(case.cores).with_design(case.design)
    machine = Machine(params, seed=case.seed)
    obs = None
    if mode == "enabled":
        obs = Observability(metrics_interval=1000)
        obs.attach(machine)
    elif mode == "profiled":
        obs = Observability(trace=False, attrib=True)
        obs.attach(machine)
    workload.setup(machine)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        machine.run(max_cycles=workload.cycle_budget)
        wall = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    trace = None
    tree = None
    if mode == "enabled":
        trace = to_chrome_trace(
            obs.tracer, metrics=obs.metrics,
            label=f"{case.workload}:{case.design.value}",
        )
    elif mode == "profiled":
        tree = obs.attrib.tree(label=case.key)
    return {
        "wall": wall,
        "events": machine.queue.executed,
        "stats": machine.stats.to_dict(),
        "trace": trace,
        "tree": tree,
    }


def _time_case(
    case, reps: int, max_reps: int, target_s: Optional[float]
) -> Dict[str, Dict[str, object]]:
    """Time the case both ways: interleaved A/B, then adaptive retries.

    docs/PERF.md's measurement discipline: on a shared host the only
    comparison that controls for load swings is alternating the two
    code paths within one process, never two back-to-back batches.

    ``min(wall)`` is the gate's estimator because wall = code + load
    and load only ever *adds* time: a quiet rep reveals the code's true
    cost, while no amount of luck makes regressed code fast.  So after
    the ``reps`` interleaved pairs, if the disabled-path minimum still
    misses *target_s* the loop keeps taking disabled reps (up to
    ``max_reps`` total) hoping for a quiet window — a real regression
    fails all of them deterministically; host load only causes a false
    FAIL if the host is busy for every single rep.
    """
    runs = {mode: [] for mode in MODES}
    for _ in range(reps):
        for mode in MODES:
            runs[mode].append(_run_once(case, mode))
    if target_s is not None:
        while (
            min(r["wall"] for r in runs["disabled"]) > target_s
            and len(runs["disabled"]) < max_reps
        ):
            runs["disabled"].append(_run_once(case, "disabled"))
    out = {}
    for mode in MODES:
        wall = [r["wall"] for r in runs[mode]]
        out[mode] = {
            "key": case.key,
            "mode": mode,
            "reps": len(wall),
            "wall_s": [round(w, 6) for w in wall],
            "min_s": round(min(wall), 6),
            "median_s": round(statistics.median(wall), 6),
            "events_executed": runs[mode][-1]["events"],
            "_stats": runs[mode][-1]["stats"],
            "_trace": runs[mode][-1]["trace"],
            "_tree": runs[mode][-1]["tree"],
        }
    return out


def run_gate(
    baseline_path: str = DEFAULT_SNAPSHOT_PATH,
    case_key: str = DEFAULT_CASE,
    reps: int = 3,
    max_reps: int = 15,
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, object]:
    """Run the gate; returns a JSON-ready report with an ``ok`` verdict."""
    load_all_workloads()
    case = _find_case(case_key)
    baseline = load_snapshot(baseline_path)
    base_case = None
    if baseline is not None:
        base_case = next(
            (c for c in baseline.get("cases", []) if c["key"] == case_key),
            None,
        )

    # per docs/PERF.md the snapshot's median_s is "the number
    # regressions are judged on"; comparing our *min* against it is
    # one-sided — the baseline median carries typical host load, the
    # current min sheds it, so only a code regression can fail.
    base_median = base_case["median_s"] if base_case else None
    target = threshold * base_median if base_median is not None else None

    timed = _time_case(case, reps, max_reps, target)
    disabled, enabled = timed["disabled"], timed["enabled"]
    profiled = timed["profiled"]

    failures: List[str] = []

    # 1. disabled-path regression vs the committed perf baseline
    if base_case is None:
        failures.append(
            f"baseline {baseline_path} has no case {case_key!r} "
            "(run `repro perf --profile fig89` to refresh it)"
        )
    elif disabled["min_s"] > target:
        failures.append(
            f"tracing-DISABLED path regressed: best of "
            f"{disabled['reps']} reps {disabled['min_s']:.4f}s"
            f" > {threshold:g} * baseline median {base_median:.4f}s"
        )

    # 2. the stats a traced or profiled run produces must match the
    # untraced run bit-for-bit — observability must never perturb the
    # simulation
    untraced_stats = disabled.pop("_stats")
    for leg, label in ((enabled, "tracing"), (profiled, "profiling")):
        leg_stats = leg.pop("_stats")
        if untraced_stats != leg_stats:
            diff = [
                k for k in untraced_stats
                if untraced_stats[k] != leg_stats.get(k)
            ]
            failures.append(
                f"{label} perturbed the simulation: stats differ in {diff}"
            )

    # 3. the exported Chrome trace must be schema-valid
    trace = enabled.pop("_trace")
    schema_errors = validate_chrome_trace(trace) if trace else [
        "traced run produced no trace"
    ]
    failures.extend(f"chrome-trace schema: {e}" for e in schema_errors)

    # 4. the profiled run's attribution tree must conserve cycles
    from repro.obs.attrib import conservation_errors

    tree = profiled.pop("_tree")
    attrib_errors = conservation_errors(tree) if tree else [
        "profiled run produced no attribution tree"
    ]
    failures.extend(f"attribution conservation: {e}" for e in attrib_errors)

    for leg in (disabled, enabled, profiled):
        leg.pop("_trace", None)
        leg.pop("_tree", None)
    overhead = (
        enabled["min_s"] / disabled["min_s"] if disabled["min_s"] else None
    )
    profile_overhead = (
        profiled["min_s"] / disabled["min_s"] if disabled["min_s"] else None
    )
    return {
        "case": case_key,
        "threshold": threshold,
        "baseline_path": baseline_path,
        "baseline_median_s": base_median,
        "disabled": disabled,
        "enabled": enabled,
        "profiled": profiled,
        "tracing_overhead_x": round(overhead, 3) if overhead else None,
        "profiling_overhead_x": (
            round(profile_overhead, 3) if profile_overhead else None
        ),
        "trace_events": len(trace["traceEvents"]) if trace else 0,
        "schema_errors": schema_errors,
        "attrib_errors": attrib_errors,
        "host": host_metadata(),
        "failures": failures,
        "ok": not failures,
    }


def render_report(report: Dict[str, object]) -> str:
    lines = [
        f"trace-overhead gate: {report['case']} "
        f"(threshold {report['threshold']:g}x)",
    ]
    base = report["baseline_median_s"]
    lines.append(
        f"  baseline (untraced) : "
        f"{base:.4f}s median" if base is not None else "  baseline : MISSING"
    )
    lines.append(f"  tracing disabled    : {report['disabled']['min_s']:.4f}s")
    lines.append(f"  tracing enabled     : {report['enabled']['min_s']:.4f}s")
    lines.append(f"  profiling enabled   : {report['profiled']['min_s']:.4f}s")
    if report["tracing_overhead_x"]:
        lines.append(
            f"  tracing overhead    : {report['tracing_overhead_x']:.2f}x "
            "(informational; only the disabled path is gated)"
        )
    if report.get("profiling_overhead_x"):
        lines.append(
            f"  profiling overhead  : "
            f"{report['profiling_overhead_x']:.2f}x (informational)"
        )
    lines.append(
        f"  chrome trace        : {report['trace_events']} events, "
        f"{len(report['schema_errors'])} schema error(s)"
    )
    lines.append(
        f"  attribution         : "
        f"{len(report['attrib_errors'])} conservation error(s)"
    )
    for failure in report["failures"]:
        lines.append(f"  FAIL: {failure}")
    lines.append("  verdict: " + ("OK" if report["ok"] else "FAILED"))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.overhead",
        description="gate the zero-cost-when-disabled tracing claim",
    )
    parser.add_argument("--baseline", default=DEFAULT_SNAPSHOT_PATH)
    parser.add_argument("--case", default=DEFAULT_CASE,
                        help=f"fig89 case key (default {DEFAULT_CASE})")
    parser.add_argument("--reps", type=int, default=3,
                        help="interleaved disabled/enabled rep pairs")
    parser.add_argument("--max-reps", type=int, default=15,
                        help="disabled-path rep budget when the host is "
                             "busy (gate passes on the first quiet rep)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="write the JSON report here")
    parser.add_argument("--report-only", action="store_true",
                        help="print and save the report but always exit 0")
    args = parser.parse_args(argv)

    report = run_gate(
        baseline_path=args.baseline,
        case_key=args.case,
        reps=args.reps,
        max_reps=args.max_reps,
        threshold=args.threshold,
    )
    print(render_report(report))
    if args.out:
        directory = os.path.dirname(args.out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.out}")
    if args.report_only:
        return 0
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
