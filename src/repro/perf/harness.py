"""Perf-regression harness: pinned matrices, snapshots, comparison.

The harness exists to seed and maintain the repo's performance
trajectory: every snapshot records how fast the *simulator* (the
Python process, not the simulated machine) runs a pinned matrix of
workloads x fence designs, so any PR can be checked against the
previous snapshot.

Design points:

* Cases are pinned (workload, design, cores, scale, seed) tuples; the
  simulated work is deterministic, so wall-clock differences are
  simulator-code differences plus host noise.  The median over
  ``reps`` repetitions suppresses most of the noise.
* Timing runs in-process and single-threaded with the GC disabled
  around each run — process-pool parallelism would measure scheduler
  behaviour, not the simulator.
* Snapshots are plain JSON with host metadata, so they are diffable
  and machine-comparable across commits (``BENCH_perf.json``).
* Comparison is per-case: a regression is ``new_median > threshold *
  old_median`` for any case whose pinned key matches.  The comparator
  never fails on matrix changes — unmatched cases are reported, not
  errors — so the matrix can evolve.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.params import FenceDesign, MachineParams
from repro.sim.machine import Machine
from repro.workloads.base import REGISTRY, load_all_workloads

SCHEMA_VERSION = 2
DEFAULT_SNAPSHOT_PATH = os.path.join("benchmarks", "perf", "BENCH_perf.json")
#: cycle-attribution companion snapshot (same matrix, simulated-cycle
#: decomposition instead of wall-clock — catches *simulated* behaviour
#: drift the wall-clock harness is blind to)
DEFAULT_ATTRIB_PATH = os.path.join("benchmarks", "perf", "BENCH_attrib.json")
#: fail when a case gets this much slower than the baseline (median).
DEFAULT_THRESHOLD = 1.25


@dataclass(frozen=True)
class PerfCase:
    """One pinned timing target."""

    workload: str
    design: FenceDesign
    cores: int = 8
    scale: float = 0.5
    seed: int = 12345
    #: simulation kernel backend the case runs on ("object" | "flat")
    kernel: str = "object"

    @property
    def key(self) -> str:
        """Stable identity used to match cases across snapshots.

        Object-kernel keys keep the historical (kernel-free) format so
        they match baselines recorded before backends existed; other
        kernels get a ``:k<kernel>`` suffix, which keeps comparison
        strictly like-vs-like — a flat-kernel speedup can never mask an
        object-kernel regression, and vice versa.
        """
        base = (
            f"{self.workload}:{self.design.value}:c{self.cores}"
            f":s{self.scale:g}:r{self.seed}"
        )
        if self.kernel != "object":
            base += f":k{self.kernel}"
        return base


#: The paper's headline bench configuration (Figs. 8/9: 8 cores,
#: CilkApps execution time + ustm throughput) under the four evaluated
#: designs — the matrix the >=2x kernel-speedup target is judged on.
_FIG89_DESIGNS = (
    FenceDesign.S_PLUS,
    FenceDesign.WS_PLUS,
    FenceDesign.W_PLUS,
    FenceDesign.WEE,
)

PROFILES: Dict[str, Sequence[PerfCase]] = {
    "fig89": tuple(
        PerfCase(workload=w, design=d)
        for w in ("fib", "matmul", "Counter", "Tree")
        for d in _FIG89_DESIGNS
    ),
    # CI smoke matrix: small, fast, still crosses the cilk/ustm split
    # and the sf-only vs recovery-capable design split.
    "tiny": tuple(
        PerfCase(workload=w, design=d, cores=4, scale=0.2)
        for w in ("fib", "Counter")
        for d in (FenceDesign.S_PLUS, FenceDesign.W_PLUS)
    ),
}


def _git_rev() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def host_metadata() -> Dict[str, object]:
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_rev": _git_rev(),
    }


def _time_case(case: PerfCase, reps: int) -> Dict[str, object]:
    """Run one case ``reps`` times; returns its snapshot entry."""
    cls = REGISTRY[case.workload]
    wall: List[float] = []
    cycles = 0
    events = 0
    for _ in range(reps):
        workload = cls(scale=case.scale)
        params = MachineParams().with_cores(case.cores).with_design(case.design)
        machine = Machine(params, seed=case.seed, kernel=case.kernel)
        workload.setup(machine)
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = machine.run(max_cycles=workload.cycle_budget)
            wall.append(time.perf_counter() - t0)
        finally:
            if gc_was_enabled:
                gc.enable()
        cycles = result.cycles
        events = machine.queue.executed
    median = statistics.median(wall)
    return {
        "key": case.key,
        "workload": case.workload,
        "design": case.design.value,
        "cores": case.cores,
        "scale": case.scale,
        "seed": case.seed,
        "kernel": case.kernel,
        "reps": reps,
        "wall_s": [round(w, 6) for w in wall],
        "median_s": round(median, 6),
        "sim_cycles": cycles,
        "events_executed": events,
        "events_per_s": round(events / median, 1) if median else 0.0,
    }


def run_profile(
    profile: str = "fig89",
    reps: int = 3,
    progress=None,
    kernel: Optional[str] = None,
    farm_db: Optional[str] = None,
    farm_workers: Optional[int] = None,
) -> Dict[str, object]:
    """Time every case of *profile*; returns the snapshot dict.

    *kernel* pins every case to one backend ("object" | "flat"); None
    keeps each case's own pinned kernel (the profiles default to
    "object", the baseline-compatible backend).

    With *farm_db* the matrix is timed as a campaign on the experiment
    farm: identical cases already timed at this code revision are
    served from the content-addressed cache, so only new or changed
    cases cost wall time.
    """
    if profile not in PROFILES:
        raise ValueError(
            f"unknown perf profile {profile!r}; choose from "
            f"{', '.join(sorted(PROFILES))}"
        )
    load_all_workloads()
    pinned = []
    for case in PROFILES[profile]:
        if kernel is not None and kernel != case.kernel:
            case = dataclasses.replace(case, kernel=kernel)
        pinned.append(case)
    if farm_db:
        from repro.farm.clients import farm_perf_cases

        cases = farm_perf_cases(pinned, reps=reps, db=farm_db,
                                workers=farm_workers)
        if progress is not None:
            for entry in cases:
                progress(entry)
    else:
        cases = []
        for case in pinned:
            entry = _time_case(case, reps)
            cases.append(entry)
            if progress is not None:
                progress(entry)
    return {
        "schema_version": SCHEMA_VERSION,
        "profile": profile,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": host_metadata(),
        "cases": cases,
        "total_median_s": round(sum(c["median_s"] for c in cases), 6),
    }


def run_attrib_profile(
    profile: str = "fig89",
    progress=None,
    kernel: Optional[str] = None,
) -> Dict[str, object]:
    """Attribution snapshot over *profile*'s matrix (one attributed run
    per case, deterministic — no reps needed).

    Each entry is the machine-level attribution tree flattened to
    component -> core-cycles, plus the conservation verdict.  The
    snapshot is diffable across commits like ``BENCH_perf.json``, but
    tracks *simulated* cycles: a change that shifts cycles between
    ``sf.drain`` and ``sf.bounce`` shows up here even when wall-clock
    is unchanged.
    """
    from repro.obs import Observability
    from repro.obs.attrib import conservation_errors, flatten_node
    from repro.workloads.base import run_workload

    if profile not in PROFILES:
        raise ValueError(
            f"unknown perf profile {profile!r}; choose from "
            f"{', '.join(sorted(PROFILES))}"
        )
    load_all_workloads()
    cases = []
    for case in PROFILES[profile]:
        if kernel is not None and kernel != case.kernel:
            case = dataclasses.replace(case, kernel=kernel)
        obs = Observability(trace=False, attrib=True)
        run = run_workload(
            case.workload, case.design, num_cores=case.cores,
            scale=case.scale, seed=case.seed, obs=obs, kernel=case.kernel,
        )
        tree = obs.attrib.tree(label=case.key)
        errors = conservation_errors(tree)
        entry = {
            "key": case.key,
            "cycles": run.cycles,
            "machine": flatten_node(tree["machine"]),
            "events": obs.attrib.design_events(),
            "conservation_ok": not errors,
        }
        if errors:
            entry["conservation_errors"] = errors
        cases.append(entry)
        if progress is not None:
            progress(entry)
    return {
        "schema_version": SCHEMA_VERSION,
        "profile": profile,
        "kind": "attrib",
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": host_metadata(),
        "cases": cases,
    }


# ---------------------------------------------------------------------------
# snapshot I/O and comparison
# ---------------------------------------------------------------------------


def load_snapshot(path: str) -> Optional[Dict[str, object]]:
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def write_snapshot(snapshot: Dict[str, object], path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=False)
        fh.write("\n")


def compare_snapshots(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, object]:
    """Per-case comparison of *current* against *baseline*.

    ``speedup`` is baseline/current (>1 means the new code is faster).
    A case regresses when ``current > threshold * baseline``.
    """
    old_by_key = {c["key"]: c for c in baseline.get("cases", [])}
    matched, regressions, unmatched = [], [], []
    for case in current.get("cases", []):
        old = old_by_key.get(case["key"])
        if old is None:
            unmatched.append(case["key"])
            continue
        old_m, new_m = old["median_s"], case["median_s"]
        speedup = old_m / new_m if new_m else float("inf")
        row = {
            "key": case["key"],
            "baseline_median_s": old_m,
            "median_s": new_m,
            "speedup": round(speedup, 3),
            "regressed": bool(new_m > threshold * old_m),
        }
        matched.append(row)
        if row["regressed"]:
            regressions.append(row)
    return {
        "baseline_created_at": baseline.get("created_at"),
        "baseline_git_rev": (baseline.get("host") or {}).get("git_rev"),
        "threshold": threshold,
        "cases": matched,
        "unmatched_keys": unmatched,
        "median_speedup": round(
            statistics.median([r["speedup"] for r in matched]), 3
        ) if matched else None,
        "regressions": [r["key"] for r in regressions],
        "ok": not regressions,
    }


def render_comparison(comparison: Dict[str, object]) -> str:
    lines = [
        f"perf comparison vs baseline "
        f"{comparison.get('baseline_git_rev') or '?'} "
        f"({comparison.get('baseline_created_at') or 'unknown time'}), "
        f"threshold {comparison['threshold']:g}x:",
    ]
    for row in comparison["cases"]:
        flag = "REGRESSED" if row["regressed"] else "ok"
        lines.append(
            f"  {row['key']:32s} {row['baseline_median_s']:.3f}s -> "
            f"{row['median_s']:.3f}s  ({row['speedup']:.2f}x)  {flag}"
        )
    for key in comparison["unmatched_keys"]:
        lines.append(f"  {key:32s} (new case, no baseline)")
    if comparison["median_speedup"] is not None:
        lines.append(f"  median speedup: {comparison['median_speedup']:.2f}x")
    lines.append(
        "  verdict: " + ("OK" if comparison["ok"]
                         else f"{len(comparison['regressions'])} regression(s)")
    )
    return "\n".join(lines)
