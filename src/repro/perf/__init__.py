"""Wall-clock performance harness (``repro perf``).

Times a pinned matrix of workloads x fence designs, writes
machine-readable ``BENCH_perf.json`` snapshots and compares them
against a previous snapshot with a configurable regression threshold.
See :mod:`repro.perf.harness` and docs/PERF.md.
"""

from repro.perf.harness import (  # noqa: F401
    DEFAULT_SNAPSHOT_PATH,
    PROFILES,
    PerfCase,
    compare_snapshots,
    load_snapshot,
    run_profile,
    write_snapshot,
)
