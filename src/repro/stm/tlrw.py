"""TLRW read/write locks (paper §4.2, Fig. 5b; Dice & Shavit's TLRW as
shipped in RSTM).

One lock object per shared-memory location: an array of per-thread
reader flags plus a writer field.  The fence groups under study:

* **read barrier** (frequent, CRITICAL → wf in WS+/SW+):
  ``readers[tid] = 1; FENCE; w = writer`` — the flag store must be
  visible before the writer check, or a concurrent writer and reader
  can both miss each other (an SCV whose symptom is a dirty read).
* **write barrier** (rare, STANDARD → sf):
  acquire ``writer`` (CAS, as RSTM does — Fig. 5b's plain store is the
  paper's exposition of the ordering requirement, not of writer-writer
  arbitration), ``FENCE``, then read all reader flags.
* **writer commit** (STANDARD): the in-place data stores must drain
  before the writer field is released — this fence sits on top of a
  write buffer full of data-store misses and is the expensive sf that
  W+ (which weakens *every* fence) eliminates but WS+ (sf on the
  writer side) keeps, reproducing the W+ > WS+ gap on write-heavy
  workloads (paper Fig. 10/11).

Locks are allocated up front for every word of a data region.  With
probability ``colocate_prob`` a lock object is placed in the same NUMA
interleave block as its data, which controls how often WeeFence can
confine its PS/BS to one directory module (Table 4 Wee columns).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.common.params import FenceRole
from repro.core import isa as ops


class TxnAbort(Exception):
    """Raised inside a transaction body to trigger abort-and-retry."""


#: interned barrier ops — immutable value types yielded millions of
#: times from the barrier inner loops; reusing one instance per shape
#: removes the dominant allocation cost of the STM op stream.
_FENCE_READ = ops.Fence(FenceRole.CRITICAL)
_FENCE_WRITE = ops.Fence(FenceRole.STANDARD)
_WRITER_SPIN = ops.Compute(60)


class LockObject:
    """Reader-flag array + writer field for one shared word.

    ``rd_ops``/``wr_ops`` lazily cache the per-thread interned op
    objects for the read/write barriers (built on a thread's first
    barrier on this lock, so untouched locks cost nothing).
    """

    __slots__ = ("reader_flags", "writer_addr", "rd_ops", "wr_ops")

    def __init__(self, reader_flags: List[int], writer_addr: int):
        self.reader_flags = reader_flags
        self.writer_addr = writer_addr
        self.rd_ops = [None] * len(reader_flags)
        self.wr_ops = [None] * len(reader_flags)


class TlrwStm:
    """Lock-table holder; per-thread transactions are built on top."""

    #: writer spins this many rounds for readers to drain before aborting
    WRITER_PATIENCE = 3
    #: reader retries the whole flag/fence/check barrier this many times
    #: (clearing its flag in between, so it never blocks the writer it
    #: is waiting for) before aborting the transaction
    READER_PATIENCE = 4

    def __init__(self, alloc, num_threads: int, colocate_prob: float = 0.35,
                 seed: int = 7):
        self.alloc = alloc
        self.num_threads = num_threads
        self.colocate_prob = colocate_prob
        self._rng = random.Random(seed)
        self.locks: Dict[int, LockObject] = {}
        # One reader flag per cache line whenever the lock object still
        # fits one NUMA interleave block.  Packing flags (a dense
        # ByteLock) makes every reader's flag store a false-sharing
        # coherence miss: the flag stores then drain slowly, the read
        # barrier's weak fence stays incomplete, the Bypass Set bloats
        # past its 32 entries and every writer store bounces — an abort
        # storm the paper's Table 4 (BS of 3-5 lines, ~0.05 bounces/wf)
        # shows real TLRW does not exhibit.  Padded flags keep a
        # thread's flag line in M state between barriers, so the fence's
        # pending store is usually an L1 hit.
        block_lines = alloc.amap.interleave_bytes // alloc.amap.line_bytes
        self.FLAGS_PER_LINE = max(1, -(-num_threads // max(1, block_lines - 1)))

    def _lock_words(self) -> int:
        """Words per lock object: flag lines + a writer line."""
        wpl = self.alloc.amap.words_per_line
        flag_lines = -(-self.num_threads // self.FLAGS_PER_LINE)
        return (flag_lines + 1) * wpl

    def register_region(self, base: int, nwords: int) -> None:
        """Create lock objects for every word of a data region.

        Must be called at setup time (before the run): allocation during
        simulated execution would break thread replay determinism.
        """
        amap = self.alloc.amap
        wb = amap.word_bytes
        wpl = amap.words_per_line
        total = self._lock_words()
        stride = wpl // self.FLAGS_PER_LINE
        for i in range(nwords):
            word = base + i * wb
            if word in self.locks:
                continue
            if self._rng.random() < self.colocate_prob:
                lock_base = self.alloc.alloc_same_bank(word, total)
            else:
                lock_base = self.alloc.alloc_line(total)
            flags = [
                lock_base + t * stride * wb for t in range(self.num_threads)
            ]
            writer_addr = lock_base + (total - wpl) * wb
            self.locks[word] = LockObject(flags, writer_addr)

    def lock_for(self, word: int) -> LockObject:
        return self.locks[word]

    # ------------------------------------------------------------------
    # barrier subroutines (used by Txn via `yield from`)
    # ------------------------------------------------------------------

    def read_acquire(self, word: int, tid: int):
        """Paper Fig. 5b read(): flag store, fence, writer check.

        On a writer conflict the reader clears its flag (never blocking
        the writer it waits for), backs off, and retries the barrier a
        few times before raising TxnAbort.
        """
        lock = self.locks[word]
        cached = lock.rd_ops[tid]
        if cached is None:
            cached = lock.rd_ops[tid] = (
                ops.Store(lock.reader_flags[tid], 1),
                ops.Load(lock.writer_addr),
                ops.Store(lock.reader_flags[tid], 0),
                tuple(ops.Compute(40 * (a + 1))
                      for a in range(self.READER_PATIENCE)),
            )
        set_flag, load_writer, clr_flag, backoffs = cached
        for attempt in range(self.READER_PATIENCE):
            yield set_flag
            yield _FENCE_READ
            writer = yield load_writer
            if writer in (0, tid + 1):
                return
            yield clr_flag
            yield backoffs[attempt]
        raise TxnAbort(f"writer {writer} holds {word:#x}")

    def read_release(self, word: int, tid: int):
        lock = self.locks[word]
        cached = lock.rd_ops[tid]
        if cached is None:  # pragma: no cover - release implies acquire
            yield ops.Store(lock.reader_flags[tid], 0)
        else:
            yield cached[2]

    def write_acquire(self, word: int, tid: int):
        """Paper Fig. 5b write(): writer acquire, fence, reader check."""
        lock = self.locks[word]
        cached = lock.wr_ops[tid]
        if cached is None:
            cached = lock.wr_ops[tid] = (
                ops.AtomicRMW(lock.writer_addr, "cas", (0, tid + 1)),
                tuple(ops.Load(lock.reader_flags[other])
                      for other in range(self.num_threads) if other != tid),
                ops.Store(lock.writer_addr, 0),
            )
        cas_writer, load_flags, clear_writer = cached
        old = yield cas_writer
        if old not in (0, tid + 1):
            raise TxnAbort(f"writer {old} holds {word:#x}")
        yield _FENCE_WRITE
        for _ in range(self.WRITER_PATIENCE):
            busy = False
            for load_flag in load_flags:
                flag = yield load_flag
                if flag:
                    busy = True
                    break
            if not busy:
                return
            yield _WRITER_SPIN
        yield clear_writer
        raise TxnAbort(f"readers pinned {word:#x}")

    def write_release(self, word: int, tid: int):
        lock = self.locks[word]
        cached = lock.wr_ops[tid]
        if cached is None:  # pragma: no cover - release implies acquire
            yield ops.Store(lock.writer_addr, 0)
        else:
            yield cached[2]
