"""Transactions over the TLRW locks: eager locking, eager versioning.

A transaction body is a generator taking a :class:`Txn` handle and
using ``yield from txn.read(addr)`` / ``yield from txn.write(addr, v)``.
Reads acquire the read lock (once), writes acquire the write lock,
record an undo entry and update the data **in place**.  Commit drains
the data stores behind a fence, then releases all locks; abort restores
the undo log, releases, backs off and the runner retries.

``run_transactions`` is the per-thread driver used by the ustm and
STAMP workloads; it wraps every attempt in the Mark bookkeeping that
feeds Figures 9/10 (throughput and per-transaction cycles).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.common.params import FenceRole
from repro.core import isa as ops
from repro.stm.tlrw import TlrwStm, TxnAbort

#: interned per-transaction bookkeeping ops (immutable value types —
#: one instance serves every transaction of every thread)
_FENCE_COMMIT = ops.Fence(FenceRole.STANDARD)
_MARK_BEGIN = ops.Mark("txn_cycles_begin")
_MARK_END = ops.Mark("txn_cycles_end")
_MARK_ABORT = ops.Mark("txn_abort")
_MARK_COMMIT = ops.Mark("txn_commit")


class Txn:
    """One transaction attempt's state (read/write sets, undo log)."""

    def __init__(self, stm: TlrwStm, tid: int):
        self.stm = stm
        self.tid = tid
        self.read_set: List[int] = []
        self.write_set: List[int] = []
        self.undo_log: List[Tuple[int, int]] = []
        self._read_held: Dict[int, bool] = {}
        self._write_held: Dict[int, bool] = {}

    # --- transactional accesses ----------------------------------------

    def read(self, word: int):
        """Transactional load: acquire the read lock once, then load."""
        if word not in self._write_held and word not in self._read_held:
            yield from self.stm.read_acquire(word, self.tid)
            self._read_held[word] = True
            self.read_set.append(word)
        value = yield ops.Load(word)
        return value

    def write(self, word: int, value: int):
        """Transactional store: write lock + undo entry + in-place update."""
        yield from self._acquire_for_write(word)
        yield ops.Store(word, value)

    def read_for_write(self, word: int):
        """Load a word under the *write* lock (RSTM's read-for-write).

        Avoids the reader-flag round trip for words the transaction is
        about to update — the idiom for read-modify-write hot words.
        """
        yield from self._acquire_for_write(word)
        value = yield ops.Load(word)
        return value

    def _acquire_for_write(self, word: int):
        if word not in self._write_held:
            yield from self.stm.write_acquire(word, self.tid)
            self._write_held[word] = True
            self.write_set.append(word)
            old = yield ops.Load(word)
            self.undo_log.append((word, old))

    # --- outcome paths -----------------------------------------------------

    def commit(self):
        """Publish: fence the in-place data stores, release all locks.

        The commit fence is the write-heavy sf of the paper's STM
        discussion — it drains every pending data store before any
        release store can be observed.
        """
        if self._write_held:
            yield _FENCE_COMMIT
            for word in self.write_set:
                yield from self.stm.write_release(word, self.tid)
        for word in self.read_set:
            # clear the reader flag even for words later upgraded to
            # writes — a leaked flag would block writers forever.
            yield from self.stm.read_release(word, self.tid)

    def abort(self):
        """Undo in-place updates, then release everything."""
        for word, old in reversed(self.undo_log):
            yield ops.Store(word, old)
        if self.undo_log:
            yield _FENCE_COMMIT
        for word in self.write_set:
            yield from self.stm.write_release(word, self.tid)
        for word in self.read_set:
            yield from self.stm.read_release(word, self.tid)


def run_transactions(
    ctx,
    stm: TlrwStm,
    make_body: Callable,
    count: int,
    think_instructions: int = 80,
    max_attempts: int = 1_000_000,
):
    """Per-thread driver: run *count* transactions, retrying aborts.

    ``make_body(ctx, attempt_index)`` returns a generator function of
    one argument (the :class:`Txn`).  Backoff is randomized exponential
    (RSTM's default contention manager family): deterministic
    synchronized retries would otherwise livelock under contention.
    """
    tid = ctx.tid
    think_op = ops.Compute(think_instructions) if think_instructions else None
    # desynchronize thread start so first transactions do not collide
    yield ops.Compute(ctx.rng.randrange(20, 260))
    for i in range(count):
        body = make_body(ctx, i)
        attempt = 0
        while True:
            txn = Txn(stm, tid)
            yield _MARK_BEGIN
            try:
                result = yield from body(txn)
            except TxnAbort:
                yield from txn.abort()
                yield _MARK_END
                yield _MARK_ABORT
                attempt += 1
                if attempt >= max_attempts:
                    break  # give up on this transaction (counted aborted)
                base = 30 * (1 << min(attempt, 6))
                yield ops.Compute(ctx.rng.randrange(base // 2, base + 1))
                continue
            yield from txn.commit()
            yield _MARK_END
            yield _MARK_COMMIT
            break
        if think_op is not None:
            yield think_op
