/* Compiled dispatch loop for the flat simulation kernel.
 *
 * Implements FlatEventQueue.run()'s hot loop in C, operating directly
 * on the queue's own Python containers -- the list of packed int64
 * keys (q._heap), the seq->handler and seq->label dicts (q._fn,
 * q._lab) and the interned handler table (q._handlers).  Because the
 * shared containers ARE the state, a Python callback that schedules,
 * cancels or introspects mid-run (sanitizer sweeps, watchdog bundles)
 * sees exactly what the pure-Python loop would show, and the two loops
 * are interchangeable at any event boundary.
 *
 * Contract kept bit-identical with FlatEventQueue._run_py:
 *   - q.now is published before each same-cycle batch dispatches;
 *   - q.executed is published before every callback runs (pumps use it
 *     to detect idle windows);
 *   - q.stop_requested is re-read after every callback (wake-on-event);
 *   - cancelled records (seq absent from q._fn) are dropped silently;
 *   - an `until` clamp sets q.now = until without dispatching past it.
 *
 * The heap sift routines replicate CPython's heapq algorithm exactly
 * (sift-to-leaf then bubble-up), so the heap's *array layout* -- not
 * just its dispatch order -- matches a pure-Python run; introspection
 * that walks the heap (pending_events) is therefore order-identical.
 *
 * Escape hatches: keys are compared as C int64, so the queue flags
 * q._big (and bumps q._gen) when any key leaves the int64-safe range,
 * and this loop hands the rest of the run to _run_py.  A q._gen bump
 * also covers _resequence() rebinding the containers.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#define SEQ_BITS 32

static PyObject *s_heap, *s_fn, *s_lab, *s_handlers, *s_now, *s_executed,
    *s_stop, *s_big, *s_gen, *s_run_py;

/* All keys are guaranteed < 2^62 (q._big gates entry), so
 * PyLong_AsLongLong cannot overflow here. */
static inline long long
key_val(PyObject *key)
{
    return PyLong_AsLongLong(key);
}

/* CPython heapq._siftdown: bubble heap[pos] up toward startpos. */
static void
siftdown_(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    long long newval = key_val(newitem);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        if (newval < key_val(parent)) {
            Py_INCREF(parent);
            PyList_SetItem(heap, pos, parent);
            pos = parentpos;
        }
        else
            break;
    }
    PyList_SetItem(heap, pos, newitem);
}

/* CPython heapq._siftup: move the root to a leaf chasing the smaller
 * child, then bubble it back up.  Exactly mirrors the stdlib so the
 * array layout stays identical to a pure-Python run. */
static void
siftup_(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos &&
            !(key_val(PyList_GET_ITEM(heap, childpos)) <
              key_val(PyList_GET_ITEM(heap, rightpos))))
            childpos = rightpos;
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        PyList_SetItem(heap, pos, child);
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    PyList_SetItem(heap, pos, newitem);
    siftdown_(heap, startpos, pos);
}

/* heapq.heappop: returns a new reference, or NULL on internal error. */
static PyObject *
heappop_(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *lastelt = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(lastelt);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(lastelt);
        return NULL;
    }
    if (PyList_GET_SIZE(heap) == 0)
        return lastelt;
    PyObject *returnitem = PyList_GET_ITEM(heap, 0);
    Py_INCREF(returnitem);
    PyList_SetItem(heap, 0, lastelt); /* steals lastelt */
    siftup_(heap, 0);
    return returnitem;
}

/* Borrowed-per-call snapshot of the queue's containers. */
typedef struct {
    PyObject *heap, *fns, *labs, *handlers; /* owned refs */
} state_t;

static void
state_clear(state_t *st)
{
    Py_CLEAR(st->heap);
    Py_CLEAR(st->fns);
    Py_CLEAR(st->labs);
    Py_CLEAR(st->handlers);
}

static int
state_fetch(PyObject *q, state_t *st)
{
    state_clear(st);
    st->heap = PyObject_GetAttr(q, s_heap);
    st->fns = PyObject_GetAttr(q, s_fn);
    st->labs = PyObject_GetAttr(q, s_lab);
    st->handlers = PyObject_GetAttr(q, s_handlers);
    if (!st->heap || !st->fns || !st->labs || !st->handlers) {
        state_clear(st);
        return -1;
    }
    return 0;
}

static int
set_ll_attr(PyObject *q, PyObject *name, long long v)
{
    PyObject *o = PyLong_FromLongLong(v);
    if (o == NULL)
        return -1;
    int rc = PyObject_SetAttr(q, name, o);
    Py_DECREF(o);
    return rc;
}

static long long
get_ll_attr(PyObject *q, PyObject *name, int *err)
{
    PyObject *o = PyObject_GetAttr(q, name);
    if (o == NULL) {
        *err = 1;
        return 0;
    }
    long long v = PyLong_AsLongLong(o);
    Py_DECREF(o);
    if (v == -1 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    return v;
}

static int
get_bool_attr(PyObject *q, PyObject *name)
{
    PyObject *o = PyObject_GetAttr(q, name);
    if (o == NULL)
        return -1;
    int v = PyObject_IsTrue(o);
    Py_DECREF(o);
    return v;
}

/* Delegate the remainder of the run to q._run_py(until, None). */
static PyObject *
delegate_py(PyObject *q, long long until)
{
    PyObject *until_obj = until < 0 ? Py_NewRef(Py_None)
                                    : PyLong_FromLongLong(until);
    if (until_obj == NULL)
        return NULL;
    PyObject *res = PyObject_CallMethodObjArgs(q, s_run_py, until_obj,
                                               Py_None, NULL);
    Py_DECREF(until_obj);
    return res;
}

static PyObject *
flatcore_run(PyObject *self, PyObject *args)
{
    PyObject *q;
    long long until;
    (void)self;
    if (!PyArg_ParseTuple(args, "OL", &q, &until))
        return NULL;

    int err = 0;
    long long gen = get_ll_attr(q, s_gen, &err);
    long long executed = get_ll_attr(q, s_executed, &err);
    long long now = get_ll_attr(q, s_now, &err);
    if (err)
        return NULL;

    state_t st = {NULL, NULL, NULL, NULL};
    if (state_fetch(q, &st) < 0)
        return NULL;

    for (;;) {
        int stop = get_bool_attr(q, s_stop);
        if (stop < 0)
            goto fail;
        if (stop)
            break;
        /* drop cancelled records surfacing at the top */
        while (PyList_GET_SIZE(st.heap) > 0) {
            PyObject *top = PyList_GET_ITEM(st.heap, 0);
            long long seq = key_val(top) & ((1LL << SEQ_BITS) - 1);
            PyObject *seqobj = PyLong_FromLongLong(seq);
            if (seqobj == NULL)
                goto fail;
            int live = PyDict_Contains(st.fns, seqobj);
            Py_DECREF(seqobj);
            if (live < 0)
                goto fail;
            if (live)
                break;
            PyObject *dead = heappop_(st.heap);
            if (dead == NULL)
                goto fail;
            Py_DECREF(dead);
        }
        if (PyList_GET_SIZE(st.heap) == 0)
            break;
        long long t = key_val(PyList_GET_ITEM(st.heap, 0)) >> SEQ_BITS;
        if (until >= 0 && t > until) {
            now = until;
            if (set_ll_attr(q, s_now, now) < 0)
                goto fail;
            break;
        }
        now = t;
        if (set_ll_attr(q, s_now, now) < 0)
            goto fail;
        /* batched same-cycle dispatch, exactly like _run_py */
        while (PyList_GET_SIZE(st.heap) > 0 &&
               key_val(PyList_GET_ITEM(st.heap, 0)) >> SEQ_BITS == t) {
            PyObject *key = heappop_(st.heap);
            if (key == NULL)
                goto fail;
            long long seq = key_val(key) & ((1LL << SEQ_BITS) - 1);
            Py_DECREF(key);
            PyObject *seqobj = PyLong_FromLongLong(seq);
            if (seqobj == NULL)
                goto fail;
            PyObject *rec = PyDict_GetItemWithError(st.fns, seqobj);
            if (rec == NULL) {
                Py_DECREF(seqobj);
                if (PyErr_Occurred())
                    goto fail;
                continue; /* cancelled mid-batch */
            }
            Py_INCREF(rec);
            if (PyDict_DelItem(st.fns, seqobj) < 0) {
                Py_DECREF(rec);
                Py_DECREF(seqobj);
                goto fail;
            }
            switch (PyDict_Contains(st.labs, seqobj)) {
            case 1:
                if (PyDict_DelItem(st.labs, seqobj) < 0) {
                    Py_DECREF(rec);
                    Py_DECREF(seqobj);
                    goto fail;
                }
                break;
            case 0:
                break;
            default:
                Py_DECREF(rec);
                Py_DECREF(seqobj);
                goto fail;
            }
            Py_DECREF(seqobj);
            executed += 1;
            if (set_ll_attr(q, s_executed, executed) < 0) {
                Py_DECREF(rec);
                goto fail;
            }
            PyObject *fn = rec;
            if (PyLong_CheckExact(rec)) {
                Py_ssize_t hid = PyLong_AsSsize_t(rec);
                fn = PyList_GET_ITEM(st.handlers, hid); /* borrowed */
            }
            PyObject *res = PyObject_CallNoArgs(fn);
            Py_DECREF(rec);
            if (res == NULL)
                goto fail; /* q.now / q.executed already published */
            Py_DECREF(res);
            /* a callback may have resequenced the queue or scheduled a
             * key outside int64 range -- both bump q._gen */
            long long g = get_ll_attr(q, s_gen, &err);
            if (err)
                goto fail;
            if (g != gen) {
                gen = g;
                int big = get_bool_attr(q, s_big);
                if (big < 0)
                    goto fail;
                if (big) {
                    state_clear(&st);
                    return delegate_py(q, until);
                }
                if (state_fetch(q, &st) < 0)
                    goto fail;
            }
            stop = get_bool_attr(q, s_stop);
            if (stop < 0)
                goto fail;
            if (stop) {
                state_clear(&st);
                return PyLong_FromLongLong(now);
            }
        }
    }
    state_clear(&st);
    return PyLong_FromLongLong(now);

fail:
    state_clear(&st);
    return NULL;
}

static PyMethodDef flatcore_methods[] = {
    {"run", flatcore_run, METH_VARARGS,
     "run(queue, until) -> now\n"
     "Drive a FlatEventQueue's dispatch loop; until=-1 means no limit."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef flatcore_module = {
    PyModuleDef_HEAD_INIT, "_flatcore",
    "Compiled dispatch core for repro.common.flatevents.", -1,
    flatcore_methods, NULL, NULL, NULL, NULL,
};

PyMODINIT_FUNC
PyInit__flatcore(void)
{
    s_heap = PyUnicode_InternFromString("_heap");
    s_fn = PyUnicode_InternFromString("_fn");
    s_lab = PyUnicode_InternFromString("_lab");
    s_handlers = PyUnicode_InternFromString("_handlers");
    s_now = PyUnicode_InternFromString("now");
    s_executed = PyUnicode_InternFromString("executed");
    s_stop = PyUnicode_InternFromString("stop_requested");
    s_big = PyUnicode_InternFromString("_big");
    s_gen = PyUnicode_InternFromString("_gen");
    s_run_py = PyUnicode_InternFromString("_run_py");
    if (!s_heap || !s_fn || !s_lab || !s_handlers || !s_now || !s_executed ||
        !s_stop || !s_big || !s_gen || !s_run_py)
        return NULL;
    return PyModule_Create(&flatcore_module);
}
