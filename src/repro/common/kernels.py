"""Kernel backend selection: object vs. flat event queues.

One machine, two interchangeable dispatch kernels:

* ``object`` — :class:`repro.common.events.EventQueue`, the always-
  available fallback whose behaviour the golden traces pin down;
* ``flat`` — :class:`repro.common.flatevents.FlatEventQueue`, packed
  integer records with table-driven dispatch (optionally accelerated by
  the compiled ``_flatcore`` extension).

Selection precedence: an explicit ``Machine(kernel=...)`` argument
beats the ``REPRO_KERNEL`` environment variable beats the default
(``object``).  The env hop is what makes whole-suite differential runs
work: ``pytest --kernel-backend=flat`` just exports ``REPRO_KERNEL``
and every Machine constructed anywhere downstream inherits it.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.common.errors import ConfigError
from repro.common.events import EventQueue
from repro.common.flatevents import FlatEventQueue

#: the selectable backends, in documentation order
KERNELS = ("object", "flat")

#: environment variable consulted when no explicit kernel is given
KERNEL_ENV = "REPRO_KERNEL"


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Resolve a kernel name: explicit arg > $REPRO_KERNEL > "object"."""
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV) or "object"
    if kernel not in KERNELS:
        raise ConfigError(
            f"unknown simulation kernel {kernel!r}; choose from {KERNELS}"
        )
    return kernel


def make_queue(kernel: Optional[str] = None):
    """Build the event queue for *kernel* (resolved per precedence).

    Returns ``(queue, resolved_name)`` so callers can record which
    backend actually ran (perf rows, stats headers).
    """
    kernel = resolve_kernel(kernel)
    if kernel == "flat":
        return FlatEventQueue(), kernel
    return EventQueue(), kernel
