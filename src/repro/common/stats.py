"""Simulation statistics.

The paper's figures plot per-core cycle breakdowns (Busy / Fence Stall /
Other Stall) and Table 4 reports event rates (fences per 1000
instructions, BS occupancy, bounces, retries, traffic, recoveries).
:class:`MachineStats` accumulates all of it; cores and protocol agents
write into it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: Retention cap for the BS-occupancy sample list. Aggregates (mean /
#: max) are tracked exactly in running form regardless of this cap; the
#: retained list is only the shape-preserving timeline, decimated by
#: stride doubling once it fills.
BS_SAMPLE_CAP = 2048


class CoreCycleBreakdown:
    """Per-core cycle accounting matching the stacked bars of Figs 8/10/11."""

    __slots__ = ("busy", "fence_stall", "other_stall")

    def __init__(self):
        self.busy = 0.0
        self.fence_stall = 0.0
        self.other_stall = 0.0

    @property
    def total(self) -> float:
        return self.busy + self.fence_stall + self.other_stall

    def as_dict(self) -> Dict[str, float]:
        return {
            "busy": self.busy,
            "fence_stall": self.fence_stall,
            "other_stall": self.other_stall,
        }


class MachineStats:
    """All counters for one simulation run."""

    __slots__ = (
        "num_cores", "breakdown", "instructions", "sf_executed",
        "wf_executed", "wee_sf_conversions", "storm_demotions",
        "bs_occupancy_samples",
        "bs_occupancy_count", "bs_occupancy_sum", "bs_occupancy_max",
        "_bs_sample_stride", "_bs_sample_phase",
        "bs_insertions", "bs_overflow_stalls", "load_replays", "bounces",
        "write_retries", "bounced_writes", "order_ops", "cond_order_ops",
        "cond_order_failures", "wplus_timeouts", "wplus_recoveries",
        "cutoff_in_recovery", "lmf_fast", "lmf_fallbacks", "cfence_skips",
        "cfence_stalls", "l1_hits", "l1_misses", "l1_evictions",
        "dirty_writebacks", "bs_keep_sharer", "network_bytes",
        "retry_bytes", "coherence_transactions", "txn_commits",
        "txn_aborts", "txn_cycles", "tasks_executed", "tasks_stolen",
        "cycles",
    )

    def __init__(self, num_cores: int):
        self.num_cores = num_cores
        self.breakdown = [CoreCycleBreakdown() for _ in range(num_cores)]

        # instruction / fence counts (per core)
        self.instructions = [0] * num_cores
        self.sf_executed = [0] * num_cores
        self.wf_executed = [0] * num_cores
        #: Wee fences demoted to sf by the GRT confinement rule.
        self.wee_sf_conversions = [0] * num_cores
        #: W+ recovery-storm demotions: the per-core storm monitor saw
        #: K recoveries inside its window and demoted the core's weak
        #: fences to sf for a cooldown (graceful degradation).
        self.storm_demotions = [0] * num_cores

        # bypass-set behaviour
        self.bs_occupancy_samples: List[int] = []
        # exact running aggregates over *all* samples (the retained list
        # above is bounded, so mean/max must not be derived from it)
        self.bs_occupancy_count = 0
        self.bs_occupancy_sum = 0
        self.bs_occupancy_max = 0
        self._bs_sample_stride = 1
        self._bs_sample_phase = 0
        self.bs_insertions = 0
        self.bs_overflow_stalls = 0
        #: post-fence loads replayed because an invalidation raced the
        #: load's BS insertion (the line vanished while it was in flight).
        self.load_replays = 0
        #: external write transactions rejected by some BS.
        self.bounces = 0
        #: retries issued by bounced writers (a write bounced N times
        #: contributes N retries).
        self.write_retries = 0
        #: distinct writes that bounced at least once.
        self.bounced_writes = 0

        # order / conditional-order transactions
        self.order_ops = 0
        self.cond_order_ops = 0
        self.cond_order_failures = 0

        # W+ recovery
        self.wplus_timeouts = 0
        self.wplus_recoveries = 0
        #: a max_cycles cutoff landed while some core was mid-recovery
        #: (checkpoint restored, write buffer still draining); the run's
        #: ``completed=False`` is then a budget artifact, not a hang.
        self.cutoff_in_recovery = False

        # l-mf extension: store-conditional fast paths vs fallbacks
        self.lmf_fast = 0
        self.lmf_fallbacks = 0

        # C-fence extension: fences skipped (no associate) vs stalled
        self.cfence_skips = 0
        self.cfence_stalls = 0

        # memory system
        self.l1_hits = 0
        self.l1_misses = 0
        self.l1_evictions = 0
        self.dirty_writebacks = 0
        self.bs_keep_sharer = 0
        self.network_bytes = 0
        #: bytes attributable to bounce retries (Table 4 traffic cols).
        self.retry_bytes = 0
        self.coherence_transactions = 0

        # STM-level (filled by the txn runner, not the machine)
        self.txn_commits = 0
        self.txn_aborts = 0
        self.txn_cycles = 0

        # work-stealing-level
        self.tasks_executed = 0
        self.tasks_stolen = 0

        # final clock, filled in by Machine.run()
        self.cycles = 0

    # --- accumulation helpers ----------------------------------------

    def add_busy(self, core: int, cycles: float) -> None:
        self.breakdown[core].busy += cycles

    def add_fence_stall(self, core: int, cycles: float) -> None:
        self.breakdown[core].fence_stall += cycles

    def add_other_stall(self, core: int, cycles: float) -> None:
        self.breakdown[core].other_stall += cycles

    def sample_bs_occupancy(self, entries: int) -> None:
        """Record one wf-completion BS occupancy sample.

        The mean/max come from exact running aggregates; the retained
        list is capped at :data:`BS_SAMPLE_CAP` by keeping every
        stride-th sample and doubling the stride (dropping every other
        retained sample) each time the cap is hit, so arbitrarily long
        runs hold a bounded, uniformly-thinned timeline.
        """
        self.bs_occupancy_count += 1
        self.bs_occupancy_sum += entries
        if entries > self.bs_occupancy_max:
            self.bs_occupancy_max = entries
        self._bs_sample_phase += 1
        if self._bs_sample_phase >= self._bs_sample_stride:
            self._bs_sample_phase = 0
            samples = self.bs_occupancy_samples
            samples.append(entries)
            if len(samples) >= BS_SAMPLE_CAP:
                del samples[::2]
                self._bs_sample_stride *= 2

    # --- derived metrics (Table 4 columns) ----------------------------

    @property
    def total_instructions(self) -> int:
        return sum(self.instructions)

    @property
    def total_sf(self) -> int:
        return sum(self.sf_executed)

    @property
    def total_wf(self) -> int:
        return sum(self.wf_executed)

    def per_kilo_inst(self, count: int) -> float:
        """Events per 1000 dynamic instructions."""
        insts = self.total_instructions
        return 1000.0 * count / insts if insts else 0.0

    @property
    def sf_per_kilo_inst(self) -> float:
        return self.per_kilo_inst(self.total_sf)

    @property
    def wf_per_kilo_inst(self) -> float:
        return self.per_kilo_inst(self.total_wf)

    @property
    def mean_bs_lines(self) -> float:
        """Average #line addresses in the BS of a wf (Table 4 col 5).

        Exact over every sample ever taken, independent of how many the
        bounded ``bs_occupancy_samples`` list still retains.
        """
        if not self.bs_occupancy_count:
            return 0.0
        return self.bs_occupancy_sum / self.bs_occupancy_count

    @property
    def max_bs_lines(self) -> int:
        """Largest BS occupancy ever sampled (exact, cap-independent)."""
        return self.bs_occupancy_max

    @property
    def bounces_per_wf(self) -> float:
        wf = self.total_wf
        return self.bounced_writes / wf if wf else 0.0

    @property
    def retries_per_bounced_write(self) -> float:
        if not self.bounced_writes:
            return 0.0
        return self.write_retries / self.bounced_writes

    @property
    def recoveries_per_wf(self) -> float:
        wf = self.total_wf
        return self.wplus_recoveries / wf if wf else 0.0

    @property
    def traffic_increase_pct(self) -> float:
        """Extra network bytes due to bounce retries, as a percentage."""
        base = self.network_bytes - self.retry_bytes
        return 100.0 * self.retry_bytes / base if base else 0.0

    # --- aggregate breakdown -------------------------------------------

    def total_breakdown(self) -> Dict[str, float]:
        """Sum of per-core breakdowns (for the averaged stacked bars)."""
        out = {"busy": 0.0, "fence_stall": 0.0, "other_stall": 0.0}
        for b in self.breakdown:
            out["busy"] += b.busy
            out["fence_stall"] += b.fence_stall
            out["other_stall"] += b.other_stall
        return out

    @property
    def fence_stall_fraction(self) -> float:
        """Fence-stall cycles as a fraction of all accounted cycles."""
        t = self.total_breakdown()
        total = t["busy"] + t["fence_stall"] + t["other_stall"]
        return t["fence_stall"] / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Every counter as one JSON-serializable dict.

        This is the *full* machine-visible state of a run — the golden
        trace tests assert it is bit-identical across simulator-kernel
        changes, so every counter added to this class must appear here.
        """
        return {
            "num_cores": self.num_cores,
            "breakdown": [b.as_dict() for b in self.breakdown],
            "instructions": list(self.instructions),
            "sf_executed": list(self.sf_executed),
            "wf_executed": list(self.wf_executed),
            "wee_sf_conversions": list(self.wee_sf_conversions),
            "storm_demotions": list(self.storm_demotions),
            "bs_occupancy_samples": list(self.bs_occupancy_samples),
            "bs_insertions": self.bs_insertions,
            "bs_overflow_stalls": self.bs_overflow_stalls,
            "load_replays": self.load_replays,
            "bounces": self.bounces,
            "write_retries": self.write_retries,
            "bounced_writes": self.bounced_writes,
            "order_ops": self.order_ops,
            "cond_order_ops": self.cond_order_ops,
            "cond_order_failures": self.cond_order_failures,
            "wplus_timeouts": self.wplus_timeouts,
            "wplus_recoveries": self.wplus_recoveries,
            "cutoff_in_recovery": self.cutoff_in_recovery,
            "lmf_fast": self.lmf_fast,
            "lmf_fallbacks": self.lmf_fallbacks,
            "cfence_skips": self.cfence_skips,
            "cfence_stalls": self.cfence_stalls,
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "l1_evictions": self.l1_evictions,
            "dirty_writebacks": self.dirty_writebacks,
            "bs_keep_sharer": self.bs_keep_sharer,
            "network_bytes": self.network_bytes,
            "retry_bytes": self.retry_bytes,
            "coherence_transactions": self.coherence_transactions,
            "txn_commits": self.txn_commits,
            "txn_aborts": self.txn_aborts,
            "txn_cycles": self.txn_cycles,
            "tasks_executed": self.tasks_executed,
            "tasks_stolen": self.tasks_stolen,
            "cycles": self.cycles,
        }

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline metrics (used by the eval harness)."""
        t = self.total_breakdown()
        return {
            "cycles": self.cycles,
            "instructions": self.total_instructions,
            "busy": t["busy"],
            "fence_stall": t["fence_stall"],
            "other_stall": t["other_stall"],
            "sf_per_ki": self.sf_per_kilo_inst,
            "wf_per_ki": self.wf_per_kilo_inst,
            "bs_lines": self.mean_bs_lines,
            "bounces_per_wf": self.bounces_per_wf,
            "retries_per_wr": self.retries_per_bounced_write,
            "traffic_incr_pct": self.traffic_increase_pct,
            "recoveries_per_wf": self.recoveries_per_wf,
            "storm_demotions": sum(self.storm_demotions),
            "txn_commits": self.txn_commits,
            "txn_aborts": self.txn_aborts,
            "tasks_executed": self.tasks_executed,
            "tasks_stolen": self.tasks_stolen,
            "network_bytes": self.network_bytes,
        }
