"""Address arithmetic: words, lines, offsets and home-bank mapping.

All simulated addresses are **byte** addresses.  Workload code usually
manipulates word-aligned addresses obtained from the allocator
(:mod:`repro.runtime.alloc`).  Coherence operates on line addresses;
fine-grain (SW+) BS state operates on word offsets within a line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class AddressMap:
    """Geometry-aware address helpers for one machine configuration."""

    line_bytes: int
    word_bytes: int
    num_banks: int
    #: bank-interleaving block size (>= line size); addresses within one
    #: block share a home bank.
    interleave_bytes: int = 0

    def __post_init__(self):
        if self.line_bytes <= 0 or self.word_bytes <= 0:
            raise ConfigError("line/word size must be positive")
        if self.line_bytes % self.word_bytes:
            raise ConfigError("line size must be a multiple of word size")
        if not self.interleave_bytes:
            object.__setattr__(self, "interleave_bytes", self.line_bytes)
        if self.interleave_bytes % self.line_bytes:
            raise ConfigError("interleave size must be a multiple of line size")

    # --- granularity conversions -------------------------------------

    def line_of(self, addr: int) -> int:
        """Line address (line-aligned byte address) containing *addr*."""
        return addr - (addr % self.line_bytes)

    def word_of(self, addr: int) -> int:
        """Word address (word-aligned byte address) containing *addr*."""
        return addr - (addr % self.word_bytes)

    def word_index(self, addr: int) -> int:
        """Index of *addr*'s word within its line (0-based)."""
        return (addr % self.line_bytes) // self.word_bytes

    def word_mask(self, addr: int) -> int:
        """Single-bit mask for *addr*'s word within its line.

        These masks travel in Conditional Order requests (SW+): one bit
        per word in the line (paper §3.3.2).
        """
        return 1 << self.word_index(addr)

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // self.word_bytes

    def words_in_line(self, line_addr: int):
        """All word addresses belonging to *line_addr*."""
        base = self.line_of(line_addr)
        return range(base, base + self.line_bytes, self.word_bytes)

    # --- NUMA home mapping --------------------------------------------

    def home_bank(self, addr: int) -> int:
        """Directory/L2 bank owning *addr* (block-interleaved)."""
        return (addr // self.interleave_bytes) % self.num_banks

    def same_line(self, a: int, b: int) -> bool:
        return self.line_of(a) == self.line_of(b)
