"""Machine parameters (paper Table 2) and fence-design selection.

``MachineParams`` carries every knob of the simulated multicore.  The
defaults reproduce Table 2 of the paper: an 8-core mesh multicore with
private 32 KB L1s, a shared banked L2, a full-map NUMA directory under a
MESI protocol, and TSO cores with a 140-entry ROB and a 64-entry write
buffer.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError


class FenceDesign(enum.Enum):
    """The five fence environments evaluated in the paper (Table 1).

    * ``S_PLUS``  — every fence is a conventional Strong Fence (sf).
    * ``WS_PLUS`` — asymmetric groups with at most one Weak Fence (wf);
      wf needs the BS plus the Order bit/operation.
    * ``SW_PLUS`` — any asymmetric group; wf needs word-granularity BS
      info and the Conditional Order operation.
    * ``W_PLUS``  — any group, including all-wf groups; wf needs
      checkpointing, deadlock timeout and rollback recovery.
    * ``WEE``     — WeeFence with its Global Reorder Table and Pending
      Set (the aggressive global-state baseline).
    """

    S_PLUS = "S+"
    WS_PLUS = "WS+"
    SW_PLUS = "SW+"
    W_PLUS = "W+"
    WEE = "Wee"
    #: extension (not part of the paper's evaluation): Location-based
    #: Memory Fences [Ladan-Mozes et al., SPAA'11], the related-work
    #: design of §8 — an LL/SC-style fence bound to one write that is
    #: cheap while the location stays exclusively cached and falls back
    #: to a conventional fence when another thread touched it.
    LMF = "l-mf"
    #: extension: Conditional Fences [Lin/Nagarajan/Gupta, PACT'10],
    #: the other §8 design — a fence stalls only while an *associate*
    #: fence executes concurrently, detected via a centralized table
    #: (the centralization the paper criticizes).
    CFENCE = "C-fence"

    def __str__(self):  # pragma: no cover - cosmetic
        return self.value


#: Designs whose weak fence carries a Bypass Set.
BS_DESIGNS = frozenset(
    {FenceDesign.WS_PLUS, FenceDesign.SW_PLUS, FenceDesign.W_PLUS, FenceDesign.WEE}
)


class FenceRole(enum.Enum):
    """Which side of an asymmetric group a fence instruction is on.

    Workload code annotates each fence with a role; the active
    :class:`FenceDesign` maps the role to an sf or a wf flavour.  The
    paper's examples: the work-stealing *owner* and the STM *reader* are
    ``CRITICAL`` (frequent, performance-sensitive), while the *thief*
    and the STM *writer* are ``STANDARD``.
    """

    CRITICAL = "critical"
    STANDARD = "standard"


class FenceFlavour(enum.Enum):
    """Concrete fence behaviour executed by a core."""

    SF = "sf"
    WF = "wf"


def flavour_for(design: FenceDesign, role: FenceRole) -> FenceFlavour:
    """Map a fence's static role to its dynamic flavour under *design*.

    * S+ turns every fence into an sf.
    * WS+ and SW+ use a wf for the critical thread and an sf elsewhere.
    * W+ uses wfs everywhere (its recovery hardware tolerates all-wf
      groups).
    * Wee uses its aggressive fence everywhere; the GRT confinement rule
      may later demote individual dynamic instances to sf behaviour.
    """
    if design in (FenceDesign.S_PLUS, FenceDesign.LMF, FenceDesign.CFENCE):
        # l-mf never lets post-fence accesses complete early: it is a
        # strong fence whose *cost* depends on the location's state.
        # C-fence likewise maps to the strong path; its policy decides
        # per dynamic instance whether any stall is needed at all.
        return FenceFlavour.SF
    if design in (FenceDesign.WS_PLUS, FenceDesign.SW_PLUS):
        if role is FenceRole.CRITICAL:
            return FenceFlavour.WF
        return FenceFlavour.SF
    # W+ and Wee run weak fences on every thread.
    return FenceFlavour.WF


def role_for_flavour(design: FenceDesign, flavour: FenceFlavour):
    """Inverse of :func:`flavour_for`: a role that *design* executes as
    *flavour*, or None when the design cannot express it.

    Fence synthesis uses this to realize a concrete (site -> flavour)
    placement as role-annotated :class:`~repro.core.isa.Fence` ops: S+
    (and the §8 extensions) cannot express a wf, while W+ and Wee
    cannot express an sf — their fences are weak on every thread and
    only *dynamic* demotion (Wee confinement, W+ storm degradation) can
    re-introduce sf behaviour.
    """
    for role in (FenceRole.STANDARD, FenceRole.CRITICAL):
        if flavour_for(design, role) is flavour:
            return role
    return None


@dataclass(frozen=True)
class MachineParams:
    """Configuration of the simulated multicore (defaults = paper Table 2)."""

    # --- topology ---------------------------------------------------
    num_cores: int = 8
    #: L2/directory banks (one per core in the paper's tiled design).
    num_banks: int = 8

    # --- core -------------------------------------------------------
    issue_width: int = 4
    rob_entries: int = 140
    write_buffer_entries: int = 64

    # --- memory hierarchy -------------------------------------------
    line_bytes: int = 32
    word_bytes: int = 4
    l1_size_bytes: int = 32 * 1024
    l1_ways: int = 4
    l1_hit_cycles: int = 2
    l2_bank_size_bytes: int = 128 * 1024
    l2_ways: int = 8
    l2_hit_cycles: int = 11
    memory_cycles: int = 200

    # --- interconnect -----------------------------------------------
    mesh_hop_cycles: int = 5
    link_bytes: int = 32  # 256-bit links
    #: NUMA bank-interleaving block size (bytes); lines within one block
    #: share a home directory module.
    bank_interleave_bytes: int = 512

    # --- fence microarchitecture ------------------------------------
    #: max Bypass Set entries per core (paper: "up to 32 entries").
    bs_entries: int = 32
    #: pipeline-serialization cost of a conventional fence, on top of
    #: the write-buffer drain (calibration knob, see DESIGN.md).
    sf_base_cycles: int = 30
    #: retry back-off for a bounced write transaction (roughly one
    #: request round trip; the first retry of a promoted write already
    #: carries the Order bit).
    bounce_retry_cycles: int = 20
    #: W+ deadlock-suspicion timeout (cycles of simultaneous
    #: bouncing-and-being-bounced before recovery triggers).  A couple
    #: of bounce round trips: long enough for transient (non-cyclic)
    #: interference to clear, short enough that genuine deadlocks do
    #: not serialize the colliding threads for long.
    wplus_timeout_cycles: int = 250
    #: per-core jitter added to the timeout to avoid recovery livelock.
    wplus_timeout_jitter_cycles: int = 19
    #: cost of restoring the register checkpoint on a W+ recovery.
    wplus_recovery_cycles: int = 20
    #: disable to model the *naive* global-state-free weak fence of
    #: Fig. 3a, which deadlocks instead of recovering (demo/tests).
    wplus_recovery_enabled: bool = True
    #: recovery-storm monitor (graceful degradation): after this many W+
    #: recoveries inside ``wplus_storm_window_cycles``, a core's weak
    #: fences demote to sf for ``wplus_storm_cooldown_cycles`` —
    #: mirroring Wee's confinement demotion rule.  0 disables the
    #: monitor (the default; the paper's W+ never demotes).
    wplus_storm_k: int = 0
    wplus_storm_window_cycles: int = 20_000
    wplus_storm_cooldown_cycles: int = 10_000
    #: ablation: an *idealized* WeeFence with an atomically-consistent
    #: global GRT view across all directory modules — the hardware the
    #: paper argues cannot be built (§2.3).  No confinement demotions,
    #: no cross-bank stalls; quantifies the implementability tax.
    wee_ideal: bool = False

    # --- simulation engine -------------------------------------------
    #: micro-batch window for purely-local operations (0 disables
    #: batching; litmus tests disable it for exact interleaving).
    batch_cycles: int = 24
    #: global no-progress watchdog period for deadlock detection.
    watchdog_interval: int = 50_000

    # --- measurement -------------------------------------------------
    fence_design: FenceDesign = FenceDesign.S_PLUS
    #: record rf/co/fr edges for the SC-violation checker (slow; only
    #: enable for litmus-sized runs).
    track_dependences: bool = False
    #: hard cap on simulated cycles (0 = unlimited).
    max_cycles: int = 0

    def __post_init__(self):
        if self.num_cores < 1:
            raise ConfigError("num_cores must be >= 1")
        if self.num_banks < 1:
            raise ConfigError("num_banks must be >= 1")
        if self.line_bytes % self.word_bytes:
            raise ConfigError("line_bytes must be a multiple of word_bytes")
        for name in ("issue_width", "write_buffer_entries", "l1_ways", "bs_entries"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        l1_lines = self.l1_size_bytes // self.line_bytes
        if l1_lines % self.l1_ways:
            raise ConfigError("L1 lines must divide evenly into ways")

    # --- derived geometry --------------------------------------------

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // self.word_bytes

    @property
    def l1_sets(self) -> int:
        return self.l1_size_bytes // (self.line_bytes * self.l1_ways)

    @property
    def mesh_dim(self) -> int:
        """Side of the square-ish mesh holding ``num_cores`` tiles."""
        return max(1, math.isqrt(self.num_cores - 1) + 1) if self.num_cores > 1 else 1

    def with_design(self, design: FenceDesign) -> "MachineParams":
        """Copy of these params running under a different fence design."""
        return replace(self, fence_design=design)

    def with_cores(self, num_cores: int) -> "MachineParams":
        """Copy with a different core count (banks scale with cores)."""
        return replace(self, num_cores=num_cores, num_banks=num_cores)


#: The exact rows of the paper's Table 2, for the Table-2 bench target.
TABLE2_ROWS = (
    ("Architecture", "Multicore with 4-32 cores (default is 8)"),
    ("Core", "Out of order, 4-issue wide, 2.0 GHz"),
    ("ROB; write buffer", "140 entries; 64 entries"),
    ("L1 cache", "Private 32KB WB, 4-way, 2-cycle RT, 32B lines"),
    ("L2 cache", "Shared with per-core 128KB WB banks; "
                 "a bank: 8-way, 11-cycle RT (local), 32B lines"),
    ("Bypass Set (BS)", "Up to 32 entries per core, 4B per entry"),
    ("Cache coherence", "MESI under TSO, full-mapped NUMA directory"),
    ("On-chip network", "2D-mesh, 5 cycles/hop, 256-bit links"),
    ("Off-chip memory", "Connected to one network port, 200-cycle RT"),
)
