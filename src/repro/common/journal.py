"""One JSONL journal for every checkpointing surface.

Three subsystems grew their own append-only JSONL checkpoint files —
the ``run_matrix`` sweep journal (:mod:`repro.eval.runner`), the chaos
matrix journal (:mod:`repro.faults.chaos`) and the synthesis engine's
per-design checkpoints (:mod:`repro.synth.engine`) — plus the farm's
campaign export (:mod:`repro.farm`).  This module is the single
implementation they all share.  The on-disk format is unchanged: one
JSON object per line, append-only.

Guarantees:

* **Torn-tail tolerance** — a writer killed mid-append (SIGKILL, OOM)
  leaves a partial last line; :func:`iter_records` skips any line that
  does not parse, so a journal is always readable up to its last
  *complete* record.
* **Deterministic dedup** — :func:`load_keyed` resolves repeated keys
  last-writer-wins (a job re-run after an unclean resume overwrites its
  earlier record; both lines parse, the later one is the truth).
* **Explicit fsync policy** — :class:`JournalWriter` defaults to
  fsync-per-record (``"always"``), the durability the crash-resilience
  tests rely on: after ``append`` returns, that record survives a
  process kill.  ``"close"`` fsyncs once at close (cheap bulk exports),
  ``"never"`` only flushes.
* **No silent destruction** — :func:`prepare` guards an existing
  journal: starting over requires an explicit *overwrite*, which
  rotates the old file to ``<path>.bak`` instead of deleting it.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Iterator, Optional

from repro.common.errors import ConfigError

FSYNC_POLICIES = ("always", "close", "never")


class JournalWriter:
    """Append-only JSONL writer with an explicit fsync policy."""

    def __init__(self, path: str, fsync: str = "always"):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy {fsync!r} not in {FSYNC_POLICIES}")
        self.path = path
        self.fsync = fsync
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "a")
        # tail repair: appending after a torn tail (a writer killed
        # mid-line) must not glue the new record onto the fragment —
        # terminate the orphan line so only the fragment is lost
        if self._fh.tell() > 0:
            with open(path, "rb") as check:
                check.seek(-1, os.SEEK_END)
                if check.read(1) != b"\n":
                    self._fh.write("\n")
                    self._fh.flush()

    def append(self, record: dict) -> None:
        """Write one record as a single line; durable on return when
        the policy is ``"always"``."""
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        if self.fsync == "always":
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is None:
            return
        self._fh.flush()
        if self.fsync == "close":
            os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_records(path: Optional[str]) -> Iterator[dict]:
    """Yield each parseable record of *path* in file order.

    Blank lines and unparseable lines (the torn tail of a killed
    writer, or a line torn mid-file by a truncated copy) are skipped;
    a missing file yields nothing.
    """
    if not path or not os.path.exists(path):
        return
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail / corrupt line
            if isinstance(rec, dict):
                yield rec


def load_keyed(
    path: Optional[str],
    key: Callable[[dict], Optional[str]],
) -> Dict[str, dict]:
    """Load ``{key: record}`` from a JSONL journal, last-writer-wins.

    *key* maps a record to its identity (return None to skip the
    record).  Repeated keys are deduplicated deterministically: the
    **last** complete record for a key is kept, in first-seen key
    order — so a job checkpointed twice (e.g. re-run after an unclean
    resume) resolves to its most recent result.
    """
    done: Dict[str, dict] = {}
    for rec in iter_records(path):
        try:
            k = key(rec)
        except (KeyError, TypeError):
            continue
        if k is None:
            continue
        done[k] = rec
    return done


def rotate_backup(path: str) -> Optional[str]:
    """Rotate an existing *path* to ``<path>.bak`` (replacing any older
    backup); returns the backup path, or None when nothing existed."""
    if not os.path.exists(path):
        return None
    backup = path + ".bak"
    os.replace(path, backup)
    return backup


def prepare(path: Optional[str], resume: bool = False,
            overwrite: bool = False) -> Optional[str]:
    """Guard an existing journal before a fresh (non-resume) sweep.

    With *resume* the journal is kept for loading.  Without it, an
    existing journal is **never silently deleted**: *overwrite* must be
    passed explicitly (CLI ``--overwrite-journal``) and rotates the old
    file to ``<path>.bak``; otherwise a :class:`ConfigError` is raised
    so a forgotten ``--resume`` cannot destroy a finished sweep's
    checkpoints.  Returns the backup path when a rotation happened.
    """
    if not path or resume or not os.path.exists(path):
        return None
    if not overwrite:
        raise ConfigError(
            f"journal {path!r} already exists; pass resume (--resume) to "
            f"continue it, or overwrite (--overwrite-journal) to rotate "
            f"it to {path + '.bak'!r} and start over"
        )
    return rotate_backup(path)
