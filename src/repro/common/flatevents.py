"""Flat table-driven simulation kernel.

The second of the two interchangeable event-queue backends (see
:mod:`repro.common.events` for the object kernel and the shared queue
protocol).  Where the object kernel stores one ``Event`` list per
scheduled callback, the flat kernel stores *scalars*:

* The heap holds packed integers ``(time << 32) | seq`` — ``heapq``
  orders them with single C-level int comparisons (no per-element list
  walk) and pushing one allocates no container.
* The record table is a dict ``seq -> handler`` where ``handler`` is
  either an integer id into the handler table (for callbacks interned
  via :meth:`FlatEventQueue.register_handler` — the cores' pre-bound
  continuation methods) or the raw callable (one-shot closures).
  Dispatch is table-driven: pop the key, mask out the seq, look up the
  record, index the handler table.
* ``cancel`` is a dict deletion; a cancelled key surfaces from the heap
  and is discarded when its seq is no longer in the record table.
  Seqs are never reused, so a stale handle can never cancel a later
  event — the flat kernel's equivalent of the object kernel's
  refcount-guarded free-list recycling.

Dispatch order is bit-identical to the object kernel by construction:
both order by (time, global schedule seq) and share the run-loop
semantics (batched same-cycle dispatch, lazy cancellation, ``until``
clamping, wake-on-event stop flag checked between events).

When the optional compiled core (``repro.common._flatcore``, a small
C extension built via ``python setup.py build_ext --inplace``) is
importable, ``run()`` delegates the dispatch loop to it; the C loop
operates on the *same* heap list and record dicts, so mid-run
introspection (sanitizer horizon checks, watchdog bundles) sees
exactly the state the pure-Python loop would show.  Set
``REPRO_FLAT_NO_C=1`` to pin the pure-Python loop.
"""

from __future__ import annotations

import heapq
import os
from typing import Callable, List, Optional

from repro.common.errors import SimulatorError

try:  # optional compiled dispatch core — pure-Python fallback below
    from repro.common import _flatcore  # type: ignore[attr-defined]
except ImportError:  # pragma: no cover - depends on build environment
    _flatcore = None

#: seq bits in a packed key.  32 bits of seq leaves |time| < 2^30 *full
#: years* of cycles before a key stops fitting the comparisons' fast
#: path; seqs wrapping past 2^32 trigger an explicit renumbering pass
#: (see ``_resequence``) so same-cycle FIFO order can never be harmed.
_SEQ_BITS = 32
_SEQ_MASK = (1 << _SEQ_BITS) - 1
#: keys at or beyond this no longer fit a C int64; the compiled loop is
#: bypassed for the rest of the run (pure-Python handles big ints).
_C_KEY_LIMIT = 1 << 62


class FlatEventQueue:
    """Priority queue of packed-scalar events with a global clock.

    Drop-in replacement for :class:`repro.common.events.EventQueue`:
    same ``schedule`` / ``run`` / ``cancel`` / introspection protocol,
    identical dispatch order.  Handles returned by ``schedule`` are
    opaque integers — pass them to ``queue.cancel``, never call methods
    on them.
    """

    def __init__(self):
        self._heap: List[int] = []
        self._seq = 0
        self.now = 0
        #: number of events executed (exposed for test/benchmark stats).
        self.executed = 0
        #: cooperative stop flag — checked between events like the
        #: object kernel's.
        self.stop_requested = False
        #: flat record tables: seq -> handler-id-or-callable, seq -> label
        self._fn: dict = {}
        self._lab: dict = {}
        #: interned handler table (table-driven dispatch)
        self._handlers: List[Callable[[], None]] = []
        self._hid: dict = {}
        #: seqs of quiescence-elastic pump ticks (idle_horizon only)
        self._elastic: set = set()
        #: a key outgrew the compiled core's int64 range this run
        self._big = False
        #: generation counter: bumped whenever the compiled loop's view
        #: of the queue goes stale (``_resequence`` rebinding the
        #: containers, or ``_big`` flipping).  The C core re-reads only
        #: this one attribute per event and refetches state on change.
        self._gen = 0
        self._use_c = (
            _flatcore is not None
            and os.environ.get("REPRO_FLAT_NO_C", "") != "1"
        )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def register_handler(self, fn: Callable[[], None]) -> int:
        """Intern *fn* into the handler table; returns its integer id.

        Registered callables are stored in scheduled records as plain
        ints and dispatched by table index.  Register long-lived hot
        callbacks (the cores' pre-bound continuations); one-shot
        closures are cheaper left unregistered.
        """
        hid = self._hid.get(fn)
        if hid is None:
            hid = len(self._handlers)
            self._handlers.append(fn)
            self._hid[fn] = hid
        return hid

    def schedule(self, delay: int, fn: Callable[[], None], label: str = "") -> int:
        """Schedule *fn* ``delay`` cycles from now; returns the handle.

        *delay* must be a non-negative integer (callers quantize
        fractional latencies before scheduling, as with the object
        kernel).
        """
        if delay < 0:
            raise SimulatorError(f"cannot schedule in the past (delay={delay})")
        self._seq = seq = self._seq + 1
        if seq > _SEQ_MASK:
            seq = self._resequence()
        key = ((self.now + delay) << _SEQ_BITS) | seq
        if key >= _C_KEY_LIMIT:
            self._big = True
            self._gen += 1
        self._fn[seq] = self._hid.get(fn, fn)
        if label:
            self._lab[seq] = label
        heapq.heappush(self._heap, key)
        return key

    def schedule_at(self, time: int, fn: Callable[[], None], label: str = "") -> int:
        """Schedule *fn* at absolute cycle *time* (>= now)."""
        return self.schedule(time - self.now, fn, label)

    def unsafe_schedule_at(self, time: int, fn: Callable[[], None],
                           label: str = "") -> int:
        """Schedule at an absolute time with no past-time check (test/
        diagnostic hook, mirroring the object kernel's)."""
        self._seq = seq = self._seq + 1
        key = (time << _SEQ_BITS) | seq
        if not (0 <= key < _C_KEY_LIMIT):
            self._big = True
            self._gen += 1
        self._fn[seq] = self._hid.get(fn, fn)
        if label:
            self._lab[seq] = label
        heapq.heappush(self._heap, key)
        return key

    def _resequence(self) -> int:
        """Renumber live records compactly after seq exhaustion.

        Reached once per 2^32 schedules; rebuilds the heap preserving
        (time, seq) order, so same-cycle FIFO semantics survive the
        renumbering exactly.
        """
        live = sorted(k for k in self._heap if (k & _SEQ_MASK) in self._fn)
        fn, lab = self._fn, self._lab
        new_fn: dict = {}
        new_lab: dict = {}
        heap: List[int] = []
        elastic = self._elastic
        new_elastic = set()
        for new_seq, key in enumerate(live, start=1):
            old_seq = key & _SEQ_MASK
            new_fn[new_seq] = fn[old_seq]
            if old_seq in lab:
                new_lab[new_seq] = lab[old_seq]
            if old_seq in elastic:
                new_elastic.add(new_seq)
            heap.append((key >> _SEQ_BITS << _SEQ_BITS) | new_seq)
        self._fn, self._lab, self._heap = new_fn, new_lab, heap
        self._elastic = new_elastic
        self._seq = len(live) + 1
        self._gen += 1
        return self._seq

    # ------------------------------------------------------------------
    # cancellation and stop control
    # ------------------------------------------------------------------

    def cancel(self, handle: Optional[int]) -> None:
        """Cancel a scheduled event by handle (None tolerated).

        O(1) lazy deletion: the record is dropped and the packed key is
        discarded when it surfaces from the heap.  Handles of events
        that already fired are harmless no-ops — seqs are never reused.
        """
        if handle is None:
            return
        seq = handle & _SEQ_MASK
        if self._fn.pop(seq, None) is not None:
            self._lab.pop(seq, None)

    def request_stop(self) -> None:
        """Ask ``run()`` to return before dispatching the next event."""
        self.stop_requested = True

    def clear_stop(self) -> None:
        self.stop_requested = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def empty(self) -> bool:
        self._drop_cancelled()
        return not self._heap

    def _drop_cancelled(self) -> None:
        heap = self._heap
        fn = self._fn
        while heap and (heap[0] & _SEQ_MASK) not in fn:
            heapq.heappop(heap)

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or None if the queue is empty."""
        self._drop_cancelled()
        return (self._heap[0] >> _SEQ_BITS) if self._heap else None

    def pending_events(self):
        """Live ``(time, label)`` pairs, in no particular order."""
        fn, lab = self._fn, self._lab
        return [
            (key >> _SEQ_BITS, lab.get(key & _SEQ_MASK, ""))
            for key in self._heap
            if (key & _SEQ_MASK) in fn
        ]

    def __len__(self) -> int:
        return len(self._fn)

    # ------------------------------------------------------------------
    # quiescence fast-forward support
    # ------------------------------------------------------------------

    def mark_elastic(self, handle: Optional[int]) -> None:
        """Flag a scheduled event as a quiescence-elastic pump tick."""
        if handle is None:
            return
        elastic = self._elastic
        elastic.add(handle & _SEQ_MASK)
        if len(elastic) > 64:
            # in-place: `elastic &= keys()` would rebind the local to a
            # fresh set (dict_keys.__rand__) and never shrink the field
            elastic.intersection_update(self._fn)

    def idle_horizon(self) -> Optional[int]:
        """Earliest live non-elastic event time, or None if none pend."""
        fn = self._fn
        elastic = self._elastic
        return min(
            (key >> _SEQ_BITS for key in self._heap
             if (key & _SEQ_MASK) in fn and (key & _SEQ_MASK) not in elastic),
            default=None,
        )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        key = heapq.heappop(self._heap)
        t = key >> _SEQ_BITS
        if t < self.now:  # pragma: no cover - defensive
            raise SimulatorError("event queue time went backwards")
        seq = key & _SEQ_MASK
        rec = self._fn.pop(seq)
        self._lab.pop(seq, None)
        self.now = t
        self.executed += 1
        if type(rec) is int:
            self._handlers[rec]()
        else:
            rec()
        return True

    def run(
        self,
        until: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run events until the queue drains, *until* cycles pass, the
        stop flag is raised, or *stop_when* returns True.  Returns the
        final clock value.  Semantics match the object kernel exactly.
        """
        if (self._use_c and stop_when is None and not self._big
                and not self.stop_requested):
            return _flatcore.run(self, -1 if until is None else until)
        return self._run_py(until, stop_when)

    def _run_py(
        self,
        until: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        heap = self._heap
        pop = heapq.heappop
        fns = self._fn
        fns_pop = fns.pop
        labs_pop = self._lab.pop
        handlers = self._handlers
        executed = self.executed
        try:
            while True:
                if stop_when is not None and stop_when():
                    break
                if self.stop_requested:
                    break
                while heap and (heap[0] & _SEQ_MASK) not in fns:
                    pop(heap)
                if not heap:
                    break
                t = heap[0] >> _SEQ_BITS
                if until is not None and t > until:
                    self.now = until
                    break
                self.now = t
                # batched same-cycle dispatch: zero-delay events
                # scheduled by a callback join this batch in seq order.
                while heap and heap[0] >> _SEQ_BITS == t:
                    seq = pop(heap) & _SEQ_MASK
                    rec = fns_pop(seq, None)
                    if rec is None:
                        continue
                    labs_pop(seq, None)
                    executed += 1
                    # publish before dispatch: pump callbacks read
                    # ``executed`` to detect idle windows, so the
                    # counter must be current inside handlers too.
                    self.executed = executed
                    if type(rec) is int:
                        handlers[rec]()
                    else:
                        rec()
                    if self.stop_requested or (
                        stop_when is not None and stop_when()
                    ):
                        return self.now
        finally:
            self.executed = executed
        return self.now
