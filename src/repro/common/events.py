"""Discrete-event simulation kernel.

A single :class:`EventQueue` drives the whole machine: cores, caches,
directory banks and the NoC all schedule callbacks on it.  Events at the
same cycle fire in scheduling order (a monotone sequence number breaks
ties), which makes executions deterministic for a given workload seed.

Hot-path layout: an :class:`Event` *is* its own heap entry — a list
``[time, seq, fn, label]`` — so ``heapq`` orders events with C-level
elementwise comparison (``seq`` is unique, so ``fn`` is never compared)
instead of calling a Python ``__lt__`` per sift step.  ``cancel()`` is
lazy deletion (``fn`` set to None).  Dispatch is batched per cycle, and
fired event slots are recycled through a free list when no external
handle to them survives (checked via the reference count), so steady
bounce/retry traffic stops allocating.

(A 16-slot timing wheel in front of the heap was prototyped and
benchmarked ~10% *slower*: with typical heap depths of 10–20 events,
C-implemented ``heappush``/``heappop`` beat the Python-level slot-scan
and FIFO bookkeeping a wheel needs.  Revisit only if event counts per
cycle grow by an order of magnitude.)

This object kernel is one of two interchangeable backends: the flat
table-driven kernel in :mod:`repro.common.flatevents` implements the
same queue protocol over packed-integer records.  Components must stick
to the shared protocol — ``schedule`` returns an *opaque* handle that
is only ever passed back to ``queue.cancel`` / ``queue.mark_elastic``,
and introspection goes through ``pending_events()`` / ``peek_time()``
rather than ``_heap`` — so a machine runs identically on either.
"""

from __future__ import annotations

import heapq
import sys
from typing import Callable, List, Optional

from repro.common.errors import SimulatorError

#: free-list bound: enough to absorb any realistic same-cycle burst
#: without letting a pathological run pin memory.
_FREE_MAX = 512


class Event(list):
    """A scheduled callback, laid out as ``[time, seq, fn, label]``.

    ``cancel()`` is O(1) (lazy deletion): it clears slot 2, and the
    queue discards the entry when it surfaces.
    """

    __slots__ = ()

    @property
    def time(self) -> int:
        return self[0]

    @property
    def seq(self) -> int:
        return self[1]

    @property
    def fn(self) -> Optional[Callable[[], None]]:
        return self[2]

    @property
    def label(self) -> str:
        return self[3]

    @property
    def cancelled(self) -> bool:
        return self[2] is None

    def cancel(self) -> None:
        self[2] = None

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "cancelled" if self[2] is None else "pending"
        return f"<Event t={self[0]} seq={self[1]} {self[3]} {state}>"


class EventQueue:
    """Priority queue of simulation events with a global clock."""

    def __init__(self):
        self._heap: List[Event] = []
        self._seq = 0
        self.now = 0
        #: number of events executed (exposed for test/benchmark stats).
        self.executed = 0
        #: cooperative stop flag — wake-on-event replacement for the
        #: old per-event ``stop_when`` polling; checked between events.
        self.stop_requested = False
        self._free: List[Event] = []
        #: seqs of events marked quiescence-elastic (periodic pump
        #: ticks); only consulted by ``idle_horizon`` — never on the
        #: dispatch hot path.
        self._elastic: set = set()

    def schedule(self, delay: int, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule *fn* to run ``delay`` cycles from now.

        *delay* must be a non-negative integer — the clock is integral
        cycles and callers quantize (``ceil``) fractional latencies
        before scheduling.
        """
        if delay < 0:
            raise SimulatorError(f"cannot schedule in the past (delay={delay})")
        self._seq = seq = self._seq + 1
        free = self._free
        if free:
            ev = free.pop()
            ev[0] = self.now + delay
            ev[1] = seq
            ev[2] = fn
            ev[3] = label
        else:
            ev = Event((self.now + delay, seq, fn, label))
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(self, time: int, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule *fn* at absolute cycle *time* (>= now)."""
        return self.schedule(time - self.now, fn, label)

    def unsafe_schedule_at(self, time: int, fn: Callable[[], None],
                           label: str = "") -> Event:
        """Schedule at an absolute time with no past-time check.

        Test/diagnostic hook (e.g. planting a behind-the-clock ghost
        event for the sanitizer's monotonicity check); never used by
        the simulator itself.
        """
        self._seq = seq = self._seq + 1
        ev = Event((time, seq, fn, label))
        heapq.heappush(self._heap, ev)
        return ev

    def cancel(self, handle: Optional[Event]) -> None:
        """Backend-portable cancel: accepts the opaque handle returned
        by ``schedule`` (None is tolerated and ignored)."""
        if handle is not None:
            handle[2] = None

    def pending_events(self):
        """Live ``(time, label)`` pairs, in no particular order.

        The backend-portable introspection surface for diagnostics
        (watchdog bundles) and structural checks (sanitizer horizon);
        replaces direct ``_heap`` walks.
        """
        return [(ev[0], ev[3]) for ev in self._heap if ev[2] is not None]

    # ------------------------------------------------------------------
    # quiescence fast-forward support
    # ------------------------------------------------------------------

    def mark_elastic(self, handle: Optional[Event]) -> None:
        """Flag a scheduled event as a quiescence-elastic pump tick.

        Elastic events are the periodic housekeeping ticks (watchdog,
        sanitizer pump, governor); ``idle_horizon`` skips them when
        computing how far the clock could jump across an idle window.
        """
        if handle is None:
            return
        elastic = self._elastic
        elastic.add(handle[1])
        if len(elastic) > 64:
            live = {ev[1] for ev in self._heap if ev[2] is not None}
            elastic &= live

    def idle_horizon(self) -> Optional[int]:
        """Earliest live non-elastic event time, or None if none pend.

        During a provably-idle window (no non-pump event dispatched),
        nothing can happen before this cycle: an elastic pump may defer
        its next tick up to here without skipping any observable work.
        O(heap) scan — called only by idle pumps, never per event.
        """
        elastic = self._elastic
        return min(
            (ev[0] for ev in self._heap
             if ev[2] is not None and ev[1] not in elastic),
            default=None,
        )

    def request_stop(self) -> None:
        """Ask ``run()`` to return before dispatching the next event.

        This is the wake-on-event idiom: components that know the
        machine-level stop condition (e.g. the last core going idle)
        raise the flag at the transition instead of the queue polling a
        predicate before every event.
        """
        self.stop_requested = True

    def clear_stop(self) -> None:
        self.stop_requested = False

    def empty(self) -> bool:
        self._drop_cancelled()
        return not self._heap

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        if ev[0] < self.now:  # pragma: no cover - defensive
            raise SimulatorError("event queue time went backwards")
        self.now = ev[0]
        self.executed += 1
        ev[2]()
        return True

    def run(
        self,
        until: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run events until the queue drains, *until* cycles pass, the
        stop flag is raised, or *stop_when* returns True.  Returns the
        final clock value.

        The loop dispatches all events of one cycle as a batch with the
        heap bound to a local, and recycles slots whose handle nobody
        kept (refcount check), which is where the kernel's speedup over
        the one-``step()``-per-iteration loop comes from.
        """
        heap = self._heap
        pop = heapq.heappop
        free = self._free
        refs = sys.getrefcount
        executed = self.executed
        try:
            while True:
                if stop_when is not None and stop_when():
                    break
                if self.stop_requested:
                    break
                while heap and heap[0][2] is None:
                    entry = pop(heap)
                    if refs(entry) == 2 and len(free) < _FREE_MAX:
                        entry[3] = ""
                        free.append(entry)
                if not heap:
                    break
                t = heap[0][0]
                if until is not None and t > until:
                    self.now = until
                    break
                self.now = t
                # batched same-cycle dispatch: zero-delay events
                # scheduled by a callback join this batch in seq order.
                while heap and heap[0][0] == t:
                    entry = pop(heap)
                    fn = entry[2]
                    if fn is None:
                        if refs(entry) == 2 and len(free) < _FREE_MAX:
                            entry[3] = ""
                            free.append(entry)
                        continue
                    executed += 1
                    # publish before dispatch: pump callbacks read
                    # ``executed`` to detect idle windows, so the
                    # counter must be current inside handlers too.
                    self.executed = executed
                    fn()
                    # recycle iff the scheduler dropped its handle —
                    # a held handle could still be cancel()ed later.
                    if refs(entry) == 2:
                        entry[2] = None
                        entry[3] = ""
                        if len(free) < _FREE_MAX:
                            free.append(entry)
                    if self.stop_requested or (
                        stop_when is not None and stop_when()
                    ):
                        return self.now
        finally:
            self.executed = executed
        return self.now

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or None if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if e[2] is not None)
