"""Discrete-event simulation kernel.

A single :class:`EventQueue` drives the whole machine: cores, caches,
directory banks and the NoC all schedule callbacks on it.  Events at the
same cycle fire in scheduling order (a monotone sequence number breaks
ties), which makes executions deterministic for a given workload seed.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.common.errors import SimulatorError


class Event:
    """A scheduled callback.  ``cancel()`` is O(1) (lazy deletion)."""

    __slots__ = ("time", "seq", "fn", "cancelled", "label")

    def __init__(self, time: int, seq: int, fn: Callable[[], None], label: str = ""):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} seq={self.seq} {self.label} {state}>"


class EventQueue:
    """Priority queue of simulation events with a global clock."""

    def __init__(self):
        self._heap: List[Event] = []
        self._seq = 0
        self.now = 0
        #: number of events executed (exposed for test/benchmark stats).
        self.executed = 0

    def schedule(self, delay: int, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule *fn* to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulatorError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        ev = Event(self.now + int(delay), self._seq, fn, label)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(self, time: int, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule *fn* at absolute cycle *time* (>= now)."""
        return self.schedule(time - self.now, fn, label)

    def empty(self) -> bool:
        self._drop_cancelled()
        return not self._heap

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        if ev.time < self.now:  # pragma: no cover - defensive
            raise SimulatorError("event queue time went backwards")
        self.now = ev.time
        self.executed += 1
        ev.fn()
        return True

    def run(
        self,
        until: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run events until the queue drains, *until* cycles pass, or
        *stop_when* returns True.  Returns the final clock value."""
        while True:
            if stop_when is not None and stop_when():
                return self.now
            self._drop_cancelled()
            if not self._heap:
                return self.now
            if until is not None and self._heap[0].time > until:
                self.now = until
                return self.now
            self.step()

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or None if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)
