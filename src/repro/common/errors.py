"""Exception types raised by the simulator."""


class SimulatorError(Exception):
    """Base class for all simulator errors."""


class ConfigError(SimulatorError):
    """A machine or workload parameter is invalid."""


class DeadlockError(SimulatorError):
    """The simulated machine reached global quiescence with live threads.

    Raised by the deadlock detector (``repro.sim.deadlock``) when the
    event queue drains while one or more simulated threads have not
    finished.  This is the observable symptom of the naive
    all-weak-fence design of Figure 3a in the paper.
    """

    def __init__(self, message, blocked_cores=()):
        super().__init__(message)
        self.blocked_cores = tuple(blocked_cores)


class ProtocolError(SimulatorError):
    """The coherence protocol reached an inconsistent state (a bug)."""


class ThreadReplayError(SimulatorError):
    """A thread diverged during checkpoint replay.

    Simulated threads must be deterministic functions of the values the
    simulator hands back for each yielded operation; W+ rollback relies
    on replaying that prefix.  Divergence means the thread broke the
    contract (e.g. consulted an unseeded RNG or wall-clock time).
    """


class SCViolationError(SimulatorError):
    """An execution was found to violate sequential consistency."""

    def __init__(self, message, cycle=()):
        super().__init__(message)
        self.cycle = tuple(cycle)
