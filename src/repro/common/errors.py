"""Exception types raised by the simulator."""


class SimulatorError(Exception):
    """Base class for all simulator errors."""


class ConfigError(SimulatorError):
    """A machine or workload parameter is invalid."""


class DeadlockError(SimulatorError):
    """The simulated machine reached global quiescence with live threads.

    Raised by the deadlock detector (``repro.sim.deadlock``) when the
    event queue drains while one or more simulated threads have not
    finished.  This is the observable symptom of the naive
    all-weak-fence design of Figure 3a in the paper.
    """

    def __init__(self, message, blocked_cores=(), diagnostics=None,
                 diagnostics_path=None):
        super().__init__(message)
        self.blocked_cores = tuple(blocked_cores)
        #: post-mortem bundle captured by the watchdog at raise time
        #: (per-core WB/BS contents, in-flight events, trace tail);
        #: None when raised outside the watchdog.
        self.diagnostics = diagnostics
        #: path of the JSON artifact the bundle was written to, when the
        #: machine had a diagnostics directory configured.
        self.diagnostics_path = diagnostics_path


class ProtocolError(SimulatorError):
    """The coherence protocol reached an inconsistent state (a bug)."""


class SanitizerError(SimulatorError):
    """The runtime protocol sanitizer found a structural violation.

    Raised (in ``strict`` mode) at the first check that observes broken
    machine state: a directory entry out of sync with the L1s, two
    writable copies of a line, Bypass-Set entries outside a weak-fence
    episode, a non-FIFO write buffer, or a message that can no longer be
    delivered.  See ``docs/SANITIZER.md`` for the invariant catalog.
    """

    def __init__(self, message, violation=None, diagnostics=None,
                 diagnostics_path=None):
        super().__init__(message)
        #: the first violation record: dict with ``invariant``,
        #: ``cycle``, ``core``, ``line`` and ``detail`` keys.
        self.violation = violation
        #: post-mortem bundle in the watchdog format (PR 4), augmented
        #: with the violation record; None when no machine was bound.
        self.diagnostics = diagnostics
        #: path of the JSON artifact, when ``Machine.diag_dir`` was set.
        self.diagnostics_path = diagnostics_path


class ThreadReplayError(SimulatorError):
    """A thread diverged during checkpoint replay.

    Simulated threads must be deterministic functions of the values the
    simulator hands back for each yielded operation; W+ rollback relies
    on replaying that prefix.  Divergence means the thread broke the
    contract (e.g. consulted an unseeded RNG or wall-clock time).
    """


class SCViolationError(SimulatorError):
    """An execution was found to violate sequential consistency."""

    def __init__(self, message, cycle=()):
        super().__init__(message)
        self.cycle = tuple(cycle)
